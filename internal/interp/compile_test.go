package interp

import (
	"errors"
	"testing"

	"repro/internal/isa"
)

// lockstep drives the interpreter (through the Stepper adapter) and the
// compiled backend through identical launches, comparing every Fill event,
// every Commit error, and the final results. This is the finest-grained
// differential check: it pins the two backends to the same event stream,
// which is what makes the timing simulator's statistics backend-invariant
// by construction.
func lockstep(t *testing.T, src string, gridWarps int) {
	t.Helper()
	lockstepProg(t, isa.MustParse(src), gridWarps)
}

func lockstepProg(t *testing.T, p *isa.Program, gridWarps int) {
	t.Helper()
	if err := isa.Validate(p); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	layout, err := NewLayout(p)
	if err != nil {
		t.Fatalf("NewLayout: %v", err)
	}
	comp, err := Compile(p)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	lc := &Launch{Prog: p, GridWarps: gridWarps}
	wpb := lc.WarpsPerBlock()
	sharedWords := (p.SharedBytes + 3) / 4
	simt := p.UsesLaneID()
	var sharedRef, sharedGot []uint32
	for wi := 0; wi < gridWarps; wi++ {
		if wi%wpb == 0 && sharedWords > 0 {
			sharedRef = make([]uint32, sharedWords)
			sharedGot = make([]uint32, sharedWords)
		}
		var ref, got StepExecutor
		if simt {
			sw, refErr := NewSIMTWarp(lc, layout, wi, sharedRef)
			cw, gotErr := NewCSIMTWarp(comp, lc, wi, sharedGot)
			if (refErr == nil) != (gotErr == nil) || !errors.Is(gotErr, refErr) && refErr != nil {
				t.Fatalf("warp %d: constructor errors diverge: interp %v, compiled %v", wi, refErr, gotErr)
			}
			if refErr != nil {
				return
			}
			ref, got = Stepper{Ex: sw}, cw
		} else {
			ref = Stepper{Ex: NewWarp(lc, layout, wi, sharedRef)}
			got = NewCWarp(comp, lc, wi, sharedGot)
		}
		for step := 0; ; step++ {
			if step > 500_000 {
				t.Fatalf("warp %d: runaway kernel", wi)
			}
			var evRef, evGot Event
			ref.Fill(&evRef)
			got.Fill(&evGot)
			compareEvents(t, wi, step, &evRef, &evGot)
			if ref.Done() != got.Done() {
				t.Fatalf("warp %d step %d: Done %v vs %v", wi, step, ref.Done(), got.Done())
			}
			if ref.Done() {
				break
			}
			errRef := ref.Commit()
			errGot := got.Commit()
			if (errRef == nil) != (errGot == nil) {
				t.Fatalf("warp %d step %d: Commit errors diverge: interp %v, compiled %v", wi, step, errRef, errGot)
			}
			if errRef != nil {
				if errRef.Error() != errGot.Error() {
					t.Fatalf("warp %d step %d: error text %q vs %q", wi, step, errRef.Error(), errGot.Error())
				}
				break
			}
		}
		sRef, cRef, nRef := ref.Result()
		sGot, cGot, nGot := got.Result()
		if sRef != sGot || cRef != cGot || nRef != nGot {
			t.Fatalf("warp %d: result (%d, %#x, %d) vs (%d, %#x, %d)",
				wi, sRef, cRef, nRef, sGot, cGot, nGot)
		}
		got.Release()
	}
}

func compareEvents(t *testing.T, wi, step int, ref, got *Event) {
	t.Helper()
	fail := func(field string, a, b any) {
		t.Fatalf("warp %d step %d: event.%s = %v (compiled), want %v (interp); instr %v",
			wi, step, field, b, a, ref.Instr)
	}
	if ref.Instr != got.Instr {
		fail("Instr", ref.Instr, got.Instr)
	}
	if ref.Kind != got.Kind {
		fail("Kind", ref.Kind, got.Kind)
	}
	if ref.Space != got.Space {
		fail("Space", ref.Space, got.Space)
	}
	if ref.Addr != got.Addr {
		fail("Addr", ref.Addr, got.Addr)
	}
	if ref.Bytes != got.Bytes {
		fail("Bytes", ref.Bytes, got.Bytes)
	}
	if ref.AbsDst != got.AbsDst {
		fail("AbsDst", ref.AbsDst, got.AbsDst)
	}
	if ref.AbsSrc != got.AbsSrc {
		fail("AbsSrc", ref.AbsSrc, got.AbsSrc)
	}
	if ref.NSrc != got.NSrc {
		fail("NSrc", ref.NSrc, got.NSrc)
	}
	if ref.ActiveLanes != got.ActiveLanes {
		fail("ActiveLanes", ref.ActiveLanes, got.ActiveLanes)
	}
	if ref.BankConflicts != got.BankConflicts {
		fail("BankConflicts", ref.BankConflicts, got.BankConflicts)
	}
	if ref.DstW != got.DstW {
		fail("DstW", ref.DstW, got.DstW)
	}
	if ref.SrcW != got.SrcW {
		fail("SrcW", ref.SrcW, got.SrcW)
	}
	if len(ref.Lines) != len(got.Lines) {
		fail("Lines", ref.Lines, got.Lines)
	}
	for i := range ref.Lines {
		if ref.Lines[i] != got.Lines[i] {
			fail("Lines", ref.Lines, got.Lines)
		}
	}
}

func TestCompiledMatchesInterpScalarLoop(t *testing.T) {
	// Exercises the ISET+CBR and MOVI+ALU superinstruction families inside
	// a loop, plus LDG/STG and XOR mixing.
	lockstep(t, `
.kernel memk
.blockdim 64
.func main
  RDSP v0, WARPID
  MOVI v1, 12
  SHL v2, v0, v1
  MOVI v3, 0
  MOVI v4, 0
loop:
  MOVI v5, 7
  SHL v6, v3, v5
  IADD v7, v2, v6
  LDG v8, [v7]
  IADD v4, v4, v8
  IADD v9, v4, v8
  XOR v4, v9, v3
  MOVI v10, 1
  IADD v3, v3, v10
  MOVI v11, 24
  ISET.LT v12, v3, v11
  CBR v12, loop
  STG [v2], v4
  EXIT
`, 8)
}

func TestCompiledMatchesInterpFusionTails(t *testing.T) {
	// A branch targets the instruction right after a fusible MOVI/LDG head:
	// the leader exclusion must keep the pair unfused so the tail executes
	// correctly when entered directly.
	lockstep(t, `
.kernel tails
.blockdim 32
.func main
  RDSP v0, WARPID
  MOVI v1, 0
  MOVI v2, 5
  ISET.EQ v3, v0, v1
  CBR v3, target
  MOVI v2, 9
target:
  IADD v4, v2, v0
  LDG v5, [v4]
  XOR v6, v5, v4
  MOVI v7, 256
  SHL v8, v0, v7
  IADD v9, v8, v7
  STG [v9], v6
  EXIT
`, 4)
}

func TestCompiledMatchesInterpCalls(t *testing.T) {
	lockstep(t, `
.kernel callsum
.func main
  MOVI v0, 11
  MOVI v1, 22
  MOVI v2, 33
  CALL v3, chain, v0
  IADD v4, v1, v2
  IADD v5, v4, v3
  MOVI v6, 300
  STG [v6], v5
  EXIT
.func chain args 1 ret
  MOVI v1, 1000
  CALL v2, leaf, v1
  IADD v3, v2, v0
  RET v3
.func leaf args 1 ret
  MOVI v1, 5
  IADD v2, v0, v1
  RET v2
`, 4)
}

func TestCompiledMatchesInterpSpills(t *testing.T) {
	p := isa.MustParse(`
.kernel spilly
.blockdim 32
.func main
  RDSP v0, WARPID
  MOVI v1, 77
  SPST.L 0, v1
  SPST.S 0, v0
  SPLD.L v2, 0
  SPLD.S v3, 0
  IADD v4, v2, v3
  MOVI v5, 8
  SHL v6, v0, v5
  STG [v6], v4
  EXIT
`)
	p.Entry().SpillLocal = 1
	p.Entry().SpillShared = 1
	lockstepProg(t, p, 8)
}

func TestCompiledMatchesInterpWideAndFloat(t *testing.T) {
	lockstep(t, `
.kernel widef
.blockdim 32
.func main
  RDSP v0, WARPID
  MOVI v1, 10
  SHL v1, v0, v1
  LDG.64 v2, [v1]
  MOV.64 v4, v2
  I2F v6, v0
  I2F v7, v4
  FADD v8, v6, v7
  FMUL v9, v8, v8
  FSUB v10, v9, v6
  FMIN v11, v9, v10
  FMAX v12, v9, v10
  FFMA v13, v11, v12, v8
  F2I v14, v13
  FSET.GT v15, v13, v6
  CBR v15, skip
  IADD v14, v14, v0
skip:
  STG.64 [v1], v2
  STG [v1], v14
  EXIT
`, 8)
}

func TestCompiledMatchesInterpSharedMemory(t *testing.T) {
	lockstep(t, `
.kernel barx
.shared 1024
.blockdim 64
.func main
  RDSP v0, WARPINBLK
  RDSP v1, BLOCKID
  MOVI v2, 4
  SHL v3, v0, v2
  MOVI v4, 99
  IADD v5, v4, v0
  STS [v3], v5
  BAR
  LDS v6, [v3]
  MOVI v7, 10
  SHL v8, v1, v7
  IADD v9, v8, v3
  STG [v9], v6
  EXIT
`, 8)
}

func TestCompiledMatchesInterpSIMT(t *testing.T) {
	lockstep(t, `
.kernel dv
.blockdim 32
.func main
  RDSP v0, LANEID
  RDSP v1, WARPID
  MOVI v2, 1
  AND v3, v0, v2
  MOVI v4, 0
  MOVI v8, 0
  ISET.NE v5, v3, v4
  CBR v5, extra
  BRA join
extra:
  MOVI v6, 0
  MOVI v7, 40
spin:
  IADD v8, v8, v2
  IADD v6, v6, v2
  ISET.LT v9, v6, v7
  CBR v9, spin
join:
  MOVI v10, 12
  SHL v11, v1, v10
  IADD v12, v11, v0
  MOVI v13, 2
  SHL v14, v12, v13
  STG [v14], v8
  EXIT
`, 8)
}

func TestCompiledMatchesInterpSIMTSharedBanks(t *testing.T) {
	lockstep(t, `
.kernel bankt
.shared 8192
.blockdim 32
.func main
  RDSP v0, LANEID
  RDSP v1, WARPID
  MOVI v2, 7
  SHL v3, v0, v2
  STS [v3], v0
  MOVI v4, 0
  MOVI v5, 0
loop:
  LDS v6, [v3]
  IADD v5, v5, v6
  MOVI v7, 1
  IADD v4, v4, v7
  MOVI v8, 16
  ISET.LT v9, v4, v8
  CBR v9, loop
  MOVI v10, 10
  SHL v11, v1, v10
  IADD v12, v11, v3
  STG [v12], v5
  EXIT
`, 4)
}

func TestCompiledMatchesInterpSIMTBarDivergedFault(t *testing.T) {
	// BAR inside a divergent region errors identically on both backends.
	lockstep(t, `
.kernel badbar
.blockdim 32
.func main
  RDSP v0, LANEID
  MOVI v1, 16
  ISET.LT v2, v0, v1
  CBR v2, low
  BAR
  BRA out
low:
  BAR
out:
  MOVI v3, 4
  SHL v4, v0, v3
  STG [v4], v0
  EXIT
`, 2)
}

func TestCompiledSIMTUnsupportedMatches(t *testing.T) {
	// A program with calls cannot run lane-accurately; both constructors
	// must report the same sentinel.
	p := isa.MustParse(`
.kernel callsum
.func main
  MOVI v0, 6
  CALL v1, sq, v0
  MOVI v2, 100
  STG [v2], v1
  EXIT
.func sq args 1 ret
  IMUL v1, v0, v0
  RET v1
`)
	comp, err := Compile(p)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	lc := &Launch{Prog: p, GridWarps: 1}
	if _, err := NewCSIMTWarp(comp, lc, 0, nil); !errors.Is(err, ErrSIMTUnsupported) {
		t.Fatalf("NewCSIMTWarp error = %v, want ErrSIMTUnsupported", err)
	}
}

func TestCompiledOfMemoizes(t *testing.T) {
	p := isa.MustParse(".kernel k\n.func main\n EXIT\n")
	a, err := CompiledOf(p)
	if err != nil {
		t.Fatal(err)
	}
	b, err := CompiledOf(p)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("CompiledOf did not memoize")
	}
}

func TestCompiledWarpPoolReuseIsClean(t *testing.T) {
	// A pooled warp must behave exactly like a fresh one: run a kernel that
	// dirties registers and spill slots, release, and re-run.
	src := `
.kernel dirty
.blockdim 32
.func main
  RDSP v0, WARPID
  SPST.L 0, v0
  SPLD.L v1, 0
  MOVI v2, 513
  IADD v3, v1, v2
  MOVI v4, 6
  SHL v5, v0, v4
  STG [v5], v3
  EXIT
`
	p := isa.MustParse(src)
	p.Entry().SpillLocal = 1
	for i := 0; i < 3; i++ {
		lockstepProg(t, p, 4)
	}
}
