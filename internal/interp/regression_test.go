package interp

import (
	"testing"

	"repro/internal/isa"
)

// TestCallArgsCopiedInParallel pins the ABI fix for lazily-compressed call
// frames: when CallBounds places the callee frame at the caller's current
// stack height, the argument window can overlap the very registers the
// arguments are read from. A sequential copy reads an already-overwritten
// value; the interpreter must read all sources before writing any.
func TestCallArgsCopiedInParallel(t *testing.T) {
	src := `
.kernel argclobber
.blockdim 32
.func main
  MOVI v0, 10
  MOVI v1, 20
  CALL v2, f, v1, v0
  MOVI v3, 64
  STG [v3], v2
  EXIT
.func f args 2 ret
  ISUB v2, v0, v1
  RET v2
`
	p := isa.MustParse(src)
	main := p.Entry()
	main.Allocated = true
	main.FrameSlots = main.NumVRegs
	// Height 0: the callee frame aliases the caller's v0/v1 exactly where
	// the argument sources live.
	main.CallBounds = []int{0}
	f := p.FuncByName("f")
	f.Allocated = true
	f.FrameSlots = f.NumVRegs
	if err := isa.Validate(p); err != nil {
		t.Fatalf("test program invalid: %v", err)
	}
	res, err := Run(&Launch{Prog: p, GridWarps: 1}, 1000)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	// f(20, 10) = 20 - 10 = 10; a sequential arg copy yields f(20, 20) = 0.
	var want uint64 = fnvOffset
	want = (want ^ 64) * fnvPrime
	want = (want ^ 10) * fnvPrime
	want = MixWarpChecksum(0, want)
	if res.Checksum != want {
		t.Errorf("checksum = %x, want %x (argument window clobbered?)", res.Checksum, want)
	}
}

// TestRunRejectsOversizedFrame pins the launch-time register-file guard:
// an entry frame larger than the whole file must fail cleanly instead of
// indexing past the register slice.
func TestRunRejectsOversizedFrame(t *testing.T) {
	src := `
.kernel big
.blockdim 32
.func main
  MOVI v600, 1
  STG [v600], v600
  EXIT
`
	p := isa.MustParse(src)
	if p.Entry().NumVRegs <= RegFileSize {
		t.Fatalf("test premise broken: frame %d fits the file", p.Entry().NumVRegs)
	}
	if _, err := Run(&Launch{Prog: p, GridWarps: 1}, 1000); err == nil {
		t.Fatal("expected register-file overflow error, got nil")
	}
}
