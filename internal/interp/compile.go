package interp

import (
	"fmt"
	"math"
	"sync"

	"repro/internal/isa"
)

// Compiled execution backend: each function is translated once into a slice
// of closures ("cops"), one per instruction, with operand registers, spill
// bases, and event metadata resolved at compile time. The timing simulator
// drives compiled warps through the StepExecutor interface: Fill copies a
// precomputed event template (patching only the frame base and the memory
// address), and Commit runs the instruction's closure. The interpreter
// (Warp/SIMTWarp) remains the semantic source of truth — every closure
// mirrors the corresponding Step case exactly, including error strings —
// and the differential tests in this package and package sim hold the two
// backends to bit-identical results.
//
// Hot two-instruction patterns are fused into superinstructions: the head's
// closure performs both instructions' warp-private effects and the tail
// collapses to a trivial pc update. Fusion never changes the event stream —
// the simulator still issues, scoreboards, and charges both instructions —
// so timing and statistics stay interpreter-identical by construction.

// StepExecutor is the execution interface the timing simulator drives.
// It differs from Executor in two ways that matter on the hot path: Fill
// writes the next event into caller-owned storage (no per-peek allocation
// or copying of a freshly built Event), and the event carries the DstW/SrcW
// operand widths so the scoreboard never re-derives them. Release returns
// pooled execution state after the warp retires.
type StepExecutor interface {
	// Fill resolves the next instruction into ev. On a finished warp it
	// writes a KindExit event.
	Fill(ev *Event)
	// Commit executes the instruction Fill resolved.
	Commit() error
	Done() bool
	// Result reports dynamic instructions, the store checksum, and the
	// store count.
	Result() (steps int, checksum uint64, stores int)
	// Release recycles pooled state. The executor must not be used after.
	Release()
}

// Stepper adapts a functional Executor (Warp, SIMTWarp) to the
// StepExecutor interface, computing the operand-width cache the compiled
// backends carry in their templates.
type Stepper struct{ Ex Executor }

// Fill resolves the next instruction via Peek and caches operand widths.
func (s Stepper) Fill(ev *Event) {
	*ev = s.Ex.Peek()
	if in := ev.Instr; in != nil {
		if ev.AbsDst >= 0 {
			ev.DstW = uint8(in.W())
		}
		for i := 0; i < ev.NSrc; i++ {
			ev.SrcW[i] = uint8(in.SrcWidth(i))
		}
	}
}

// Commit executes the instruction Fill resolved.
func (s Stepper) Commit() error {
	_, err := s.Ex.Step()
	return err
}

// Done reports whether the warp has exited.
func (s Stepper) Done() bool { return s.Ex.Done() }

// Result reports dynamic instructions, store checksum, and store count.
func (s Stepper) Result() (int, uint64, int) { return s.Ex.Result() }

// Release is a no-op: interpreter warps are not pooled.
func (s Stepper) Release() {}

var (
	_ StepExecutor = Stepper{}
	_ StepExecutor = (*CWarp)(nil)
	_ StepExecutor = (*CSIMTWarp)(nil)
	_ Executor     = (*CWarp)(nil)
	_ Executor     = (*CSIMTWarp)(nil)
)

// addrMode tells Fill how to compute the event address for memory ops; all
// other template fields are static.
type addrMode uint8

const (
	amNone   addrMode = iota
	amReg             // regs[base+addrReg] + addrImm (LDG/STG/LDS/STS)
	amSpillS          // 4*(shBase + addrImm)
	amSpillL          // LocalSlotBytes*(WarpID*stride + locBase + addrImm)
)

// cop is one compiled instruction: an event template with frame-relative
// register operands plus the closure that commits it.
type cop struct {
	tmpl    Event
	mode    addrMode
	addrReg int32
	addrImm int32
	exec    func(*CWarp)
}

// Compiled is a program translated to closures, shared (immutably) by every
// warp executing that program.
type Compiled struct {
	prog   *isa.Program
	layout *Layout

	code      [][]cop // per function, indexed by pc
	locStride int     // max(layout.LocalSpillSlots, 1)

	// SIMT (lane-accurate) translation; simtErr mirrors NewSIMTWarp's
	// eligibility check for programs that read LANEID.
	simt      []csop
	simtNRegs int
	simtErr   error
}

// Layout returns the static layout the compilation used.
func (c *Compiled) Layout() *Layout { return c.layout }

// compileCache memoizes Compile per program identity, mirroring layoutCache:
// programs are immutable once realized, and the tuner simulates the same
// binary many times.
var compileCache sync.Map // *isa.Program -> *Compiled

// CompiledOf returns the memoized translation of a finalized program.
func CompiledOf(p *isa.Program) (*Compiled, error) {
	if v, ok := compileCache.Load(p); ok {
		return v.(*Compiled), nil
	}
	c, err := Compile(p)
	if err != nil {
		return nil, err
	}
	v, _ := compileCache.LoadOrStore(p, c)
	return v.(*Compiled), nil
}

// Compile translates a validated program into closures.
func Compile(p *isa.Program) (*Compiled, error) {
	layout, err := NewLayout(p)
	if err != nil {
		return nil, err
	}
	c := &Compiled{prog: p, layout: layout, locStride: layout.LocalSpillSlots}
	if c.locStride == 0 {
		c.locStride = 1
	}
	c.code = make([][]cop, len(p.Funcs))
	for fi := range p.Funcs {
		c.code[fi] = c.compileFunc(fi)
	}
	c.compileSIMT()
	return c, nil
}

func (c *Compiled) compileFunc(fi int) []cop {
	f := c.prog.Funcs[fi]
	code := make([]cop, len(f.Instrs))
	for i := range f.Instrs {
		in := &f.Instrs[i]
		code[i].tmpl = template(in)
		code[i].mode, code[i].addrReg, code[i].addrImm = addrModeOf(in)
		code[i].exec = c.compileOp(fi, i, in)
	}
	c.fuse(f, code)
	return code
}

// template precomputes everything Warp.Peek derives per call, with AbsDst
// and AbsSrc left frame-relative (Fill adds the frame base).
func template(in *isa.Instr) Event {
	ev := Event{Instr: in, AbsDst: -1, AbsSrc: [3]int{-1, -1, -1}}
	if in.HasDst() {
		ev.AbsDst = int(in.Dst)
		ev.DstW = uint8(in.W())
	}
	ev.NSrc = in.NumSrcs()
	for i := 0; i < ev.NSrc; i++ {
		ev.AbsSrc[i] = int(in.Src[i])
		ev.SrcW[i] = uint8(in.SrcWidth(i))
	}
	switch in.Op {
	case isa.OpLdG:
		ev.Kind, ev.Space, ev.Bytes = KindLoad, SpaceGlobal, 4*in.W()
	case isa.OpStG:
		ev.Kind, ev.Space, ev.Bytes = KindStore, SpaceGlobal, 4*in.W()
	case isa.OpLdS:
		ev.Kind, ev.Space, ev.Bytes = KindLoad, SpaceShared, 4*in.W()
	case isa.OpStS:
		ev.Kind, ev.Space, ev.Bytes = KindStore, SpaceShared, 4*in.W()
	case isa.OpSpillSL:
		ev.Kind, ev.Space, ev.Bytes = KindLoad, SpaceShared, 4*in.W()
	case isa.OpSpillSS:
		ev.Kind, ev.Space, ev.Bytes = KindStore, SpaceShared, 4*in.W()
	case isa.OpSpillLL:
		ev.Kind, ev.Space, ev.Bytes = KindLoad, SpaceLocal, 4*in.W()
	case isa.OpSpillLS:
		ev.Kind, ev.Space, ev.Bytes = KindStore, SpaceLocal, 4*in.W()
	case isa.OpBra, isa.OpCbr:
		ev.Kind = KindBranch
	case isa.OpCall, isa.OpRet:
		ev.Kind = KindCall
	case isa.OpBar:
		ev.Kind = KindBarrier
	case isa.OpExit:
		ev.Kind = KindExit
	case isa.OpFAdd, isa.OpFSub, isa.OpFMul, isa.OpFFma, isa.OpFMin,
		isa.OpFMax, isa.OpFSet, isa.OpF2I, isa.OpI2F:
		ev.Kind = KindFPU
	default:
		ev.Kind = KindALU
	}
	return ev
}

func addrModeOf(in *isa.Instr) (addrMode, int32, int32) {
	switch in.Op {
	case isa.OpLdG, isa.OpStG, isa.OpLdS, isa.OpStS:
		return amReg, int32(in.Src[0]), in.Imm
	case isa.OpSpillSL, isa.OpSpillSS:
		return amSpillS, 0, in.Imm
	case isa.OpSpillLL, isa.OpSpillLS:
		return amSpillL, 0, in.Imm
	}
	return amNone, 0, 0
}

// CWarp executes one warp (warp-scalar mode) through a compiled program.
// It mirrors Warp state exactly; instances are pooled across launches.
type CWarp struct {
	c      *Compiled
	launch *Launch

	WarpID    int
	BlockID   int
	WarpInBlk int
	SMID      int

	regs     [regFileSize]uint32
	shSpill  []uint32
	locSpill []uint32
	shared   []uint32

	stack []frame
	fr    *frame // &stack[len(stack)-1]
	code  []cop  // c.code[fr.fn]

	fusedPC int32 // successor pc latched by a fused compare+branch head
	done    bool
	err     error

	steps    int
	cks      uint64
	storeCnt int
}

var cwarpPool = sync.Pool{New: func() any { return new(CWarp) }}

// NewCWarp creates (or recycles) a compiled warp executor. Recycled state
// is fully re-zeroed so pooled warps are indistinguishable from fresh ones.
func NewCWarp(c *Compiled, lc *Launch, warpID int, shared []uint32) *CWarp {
	w := cwarpPool.Get().(*CWarp)
	wpb := lc.WarpsPerBlock()
	w.c = c
	w.launch = lc
	w.WarpID = lc.FirstWarp + warpID
	w.BlockID = w.WarpID / wpb
	w.WarpInBlk = w.WarpID % wpb
	w.SMID = 0
	w.regs = [regFileSize]uint32{}
	w.shSpill = reuseZeroed(w.shSpill, c.layout.SharedSpillSlots)
	w.locSpill = reuseZeroed(w.locSpill, c.layout.LocalSpillSlots)
	w.shared = shared
	w.stack = append(w.stack[:0], frame{fn: 0, retDst: -1})
	w.fr = &w.stack[0]
	w.code = c.code[0]
	w.fusedPC = 0
	w.done = false
	w.err = nil
	w.steps, w.storeCnt = 0, 0
	w.cks = fnvOffset
	return w
}

func reuseZeroed(buf []uint32, n int) []uint32 {
	if n == 0 {
		return buf[:0]
	}
	if cap(buf) < n {
		return make([]uint32, n)
	}
	buf = buf[:n]
	clear(buf)
	return buf
}

// Release returns the warp to the pool.
func (w *CWarp) Release() {
	w.c, w.launch, w.shared, w.code = nil, nil, nil, nil
	cwarpPool.Put(w)
}

// Done reports whether the warp has exited.
func (w *CWarp) Done() bool { return w.done }

// Result reports executed instruction count, store checksum, and stores.
func (w *CWarp) Result() (int, uint64, int) { return w.steps, w.cks, w.storeCnt }

// Fill resolves the next instruction by copying its compiled template and
// patching the frame base and memory address.
func (w *CWarp) Fill(ev *Event) {
	if w.done {
		*ev = Event{Kind: KindExit, AbsDst: -1}
		return
	}
	fr := w.fr
	op := &w.code[fr.pc]
	*ev = op.tmpl
	if base := fr.base; base != 0 {
		if ev.AbsDst >= 0 {
			ev.AbsDst += base
		}
		for i := 0; i < ev.NSrc; i++ {
			ev.AbsSrc[i] += base
		}
	}
	switch op.mode {
	case amNone:
	case amReg:
		ev.Addr = w.regs[fr.base+int(op.addrReg)] + uint32(op.addrImm)
	case amSpillS:
		ev.Addr = uint32(4 * (fr.shBase + int(op.addrImm)))
	case amSpillL:
		ev.Addr = uint32(LocalSlotBytes * (w.WarpID*w.c.locStride + fr.locBase + int(op.addrImm)))
	}
}

// Commit executes the current instruction's closure.
func (w *CWarp) Commit() error {
	if w.done {
		return nil
	}
	w.steps++
	w.code[w.fr.pc].exec(w)
	return w.err
}

// Peek implements Executor for differential tests.
func (w *CWarp) Peek() Event {
	var ev Event
	w.Fill(&ev)
	return ev
}

// Step implements Executor for differential tests.
func (w *CWarp) Step() (Event, error) {
	var ev Event
	w.Fill(&ev)
	return ev, w.Commit()
}

func (w *CWarp) readSpecial(sp isa.Sp) uint32 {
	switch sp {
	case isa.SpWarpID:
		return uint32(w.WarpID)
	case isa.SpBlockID:
		return uint32(w.BlockID)
	case isa.SpWarpInBlk:
		return uint32(w.WarpInBlk)
	case isa.SpNumWarps:
		return uint32(w.launch.GridWarps + w.launch.FirstWarp)
	case isa.SpWarpsPerBlk:
		return uint32(w.launch.WarpsPerBlock())
	case isa.SpSMID:
		return uint32(w.SMID)
	}
	return 0
}

// compileOp builds the closure for one instruction. Each case mirrors the
// corresponding Warp.Step case exactly.
func (c *Compiled) compileOp(fi, pc int, in *isa.Instr) func(*CWarp) {
	d, s0, s1, s2 := int(in.Dst), int(in.Src[0]), int(in.Src[1]), int(in.Src[2])
	ui := uint32(in.Imm)
	wn := in.W()
	switch in.Op {
	case isa.OpIAdd:
		return func(w *CWarp) {
			fr := w.fr
			b := fr.base
			w.regs[b+d] = w.regs[b+s0] + w.regs[b+s1]
			fr.pc++
		}
	case isa.OpISub:
		return func(w *CWarp) {
			fr := w.fr
			b := fr.base
			w.regs[b+d] = w.regs[b+s0] - w.regs[b+s1]
			fr.pc++
		}
	case isa.OpIMul:
		return func(w *CWarp) {
			fr := w.fr
			b := fr.base
			w.regs[b+d] = w.regs[b+s0] * w.regs[b+s1]
			fr.pc++
		}
	case isa.OpIMad:
		return func(w *CWarp) {
			fr := w.fr
			b := fr.base
			w.regs[b+d] = w.regs[b+s0]*w.regs[b+s1] + w.regs[b+s2]
			fr.pc++
		}
	case isa.OpIMin:
		return func(w *CWarp) {
			fr := w.fr
			b := fr.base
			x, y := int32(w.regs[b+s0]), int32(w.regs[b+s1])
			if y < x {
				x = y
			}
			w.regs[b+d] = uint32(x)
			fr.pc++
		}
	case isa.OpIMax:
		return func(w *CWarp) {
			fr := w.fr
			b := fr.base
			x, y := int32(w.regs[b+s0]), int32(w.regs[b+s1])
			if y > x {
				x = y
			}
			w.regs[b+d] = uint32(x)
			fr.pc++
		}
	case isa.OpAnd:
		return func(w *CWarp) {
			fr := w.fr
			b := fr.base
			w.regs[b+d] = w.regs[b+s0] & w.regs[b+s1]
			fr.pc++
		}
	case isa.OpOr:
		return func(w *CWarp) {
			fr := w.fr
			b := fr.base
			w.regs[b+d] = w.regs[b+s0] | w.regs[b+s1]
			fr.pc++
		}
	case isa.OpXor:
		return func(w *CWarp) {
			fr := w.fr
			b := fr.base
			w.regs[b+d] = w.regs[b+s0] ^ w.regs[b+s1]
			fr.pc++
		}
	case isa.OpShl:
		return func(w *CWarp) {
			fr := w.fr
			b := fr.base
			w.regs[b+d] = w.regs[b+s0] << (w.regs[b+s1] & 31)
			fr.pc++
		}
	case isa.OpShr:
		return func(w *CWarp) {
			fr := w.fr
			b := fr.base
			w.regs[b+d] = w.regs[b+s0] >> (w.regs[b+s1] & 31)
			fr.pc++
		}
	case isa.OpISet:
		cmp := in.Cmp
		return func(w *CWarp) {
			fr := w.fr
			b := fr.base
			w.regs[b+d] = boolWord(cmpInt(cmp, int32(w.regs[b+s0]), int32(w.regs[b+s1])))
			fr.pc++
		}
	case isa.OpFAdd:
		return func(w *CWarp) {
			fr := w.fr
			b := fr.base
			w.regs[b+d] = math.Float32bits(math.Float32frombits(w.regs[b+s0]) + math.Float32frombits(w.regs[b+s1]))
			fr.pc++
		}
	case isa.OpFSub:
		return func(w *CWarp) {
			fr := w.fr
			b := fr.base
			w.regs[b+d] = math.Float32bits(math.Float32frombits(w.regs[b+s0]) - math.Float32frombits(w.regs[b+s1]))
			fr.pc++
		}
	case isa.OpFMul:
		return func(w *CWarp) {
			fr := w.fr
			b := fr.base
			w.regs[b+d] = math.Float32bits(math.Float32frombits(w.regs[b+s0]) * math.Float32frombits(w.regs[b+s1]))
			fr.pc++
		}
	case isa.OpFFma:
		return func(w *CWarp) {
			fr := w.fr
			b := fr.base
			x := math.Float32frombits(w.regs[b+s0])
			y := math.Float32frombits(w.regs[b+s1])
			z := math.Float32frombits(w.regs[b+s2])
			w.regs[b+d] = math.Float32bits(x*y + z)
			fr.pc++
		}
	case isa.OpFMin:
		return func(w *CWarp) {
			fr := w.fr
			b := fr.base
			x := math.Float32frombits(w.regs[b+s0])
			y := math.Float32frombits(w.regs[b+s1])
			if y < x {
				x = y
			}
			w.regs[b+d] = math.Float32bits(x)
			fr.pc++
		}
	case isa.OpFMax:
		return func(w *CWarp) {
			fr := w.fr
			b := fr.base
			x := math.Float32frombits(w.regs[b+s0])
			y := math.Float32frombits(w.regs[b+s1])
			if y > x {
				x = y
			}
			w.regs[b+d] = math.Float32bits(x)
			fr.pc++
		}
	case isa.OpFSet:
		cmp := in.Cmp
		return func(w *CWarp) {
			fr := w.fr
			b := fr.base
			x := math.Float32frombits(w.regs[b+s0])
			y := math.Float32frombits(w.regs[b+s1])
			w.regs[b+d] = boolWord(cmpFloat(cmp, x, y))
			fr.pc++
		}
	case isa.OpF2I:
		return func(w *CWarp) {
			fr := w.fr
			b := fr.base
			fv := float64(math.Float32frombits(w.regs[b+s0]))
			var iv int32
			switch {
			case fv != fv: // NaN
				iv = 0
			case fv >= math.MaxInt32:
				iv = math.MaxInt32
			case fv <= math.MinInt32:
				iv = math.MinInt32
			default:
				iv = int32(fv)
			}
			w.regs[b+d] = uint32(iv)
			fr.pc++
		}
	case isa.OpI2F:
		return func(w *CWarp) {
			fr := w.fr
			b := fr.base
			w.regs[b+d] = math.Float32bits(float32(int32(w.regs[b+s0])))
			fr.pc++
		}
	case isa.OpMov:
		if wn == 1 {
			return func(w *CWarp) {
				fr := w.fr
				b := fr.base
				w.regs[b+d] = w.regs[b+s0]
				fr.pc++
			}
		}
		return func(w *CWarp) {
			fr := w.fr
			b := fr.base
			for i := 0; i < wn; i++ {
				w.regs[b+d+i] = w.regs[b+s0+i]
			}
			fr.pc++
		}
	case isa.OpMovI:
		return func(w *CWarp) {
			fr := w.fr
			w.regs[fr.base+d] = ui
			fr.pc++
		}
	case isa.OpRdSp:
		sp := in.Sp
		return func(w *CWarp) {
			fr := w.fr
			w.regs[fr.base+d] = w.readSpecial(sp)
			fr.pc++
		}
	case isa.OpLdG:
		if wn == 1 {
			return func(w *CWarp) {
				fr := w.fr
				b := fr.base
				w.regs[b+d] = GlobalData(w.regs[b+s0] + ui)
				fr.pc++
			}
		}
		return func(w *CWarp) {
			fr := w.fr
			b := fr.base
			addr := w.regs[b+s0] + ui
			for i := 0; i < wn; i++ {
				w.regs[b+d+i] = GlobalData(addr + uint32(4*i))
			}
			fr.pc++
		}
	case isa.OpStG:
		return func(w *CWarp) {
			fr := w.fr
			b := fr.base
			addr := w.regs[b+s0] + ui
			h := w.cks
			for i := 0; i < wn; i++ {
				h = (h ^ uint64(addr+uint32(4*i))) * fnvPrime
				h = (h ^ uint64(w.regs[b+s1+i])) * fnvPrime
			}
			w.cks = h
			w.storeCnt += wn
			fr.pc++
		}
	case isa.OpLdS:
		return func(w *CWarp) {
			fr := w.fr
			b := fr.base
			addr := w.regs[b+s0] + ui
			if n := uint32(len(w.shared)); n != 0 {
				for i := 0; i < wn; i++ {
					w.regs[b+d+i] = w.shared[((addr+uint32(4*i))>>2)%n]
				}
			} else {
				for i := 0; i < wn; i++ {
					w.regs[b+d+i] = 0
				}
			}
			fr.pc++
		}
	case isa.OpStS:
		return func(w *CWarp) {
			fr := w.fr
			b := fr.base
			if n := uint32(len(w.shared)); n != 0 {
				addr := w.regs[b+s0] + ui
				for i := 0; i < wn; i++ {
					w.shared[((addr+uint32(4*i))>>2)%n] = w.regs[b+s1+i]
				}
			}
			fr.pc++
		}
	case isa.OpSpillSS:
		ii := int(in.Imm)
		return func(w *CWarp) {
			fr := w.fr
			b := fr.base
			o := fr.shBase + ii
			for i := 0; i < wn; i++ {
				w.shSpill[o+i] = w.regs[b+s0+i]
			}
			fr.pc++
		}
	case isa.OpSpillSL:
		ii := int(in.Imm)
		return func(w *CWarp) {
			fr := w.fr
			b := fr.base
			o := fr.shBase + ii
			for i := 0; i < wn; i++ {
				w.regs[b+d+i] = w.shSpill[o+i]
			}
			fr.pc++
		}
	case isa.OpSpillLS:
		ii := int(in.Imm)
		return func(w *CWarp) {
			fr := w.fr
			b := fr.base
			o := fr.locBase + ii
			for i := 0; i < wn; i++ {
				w.locSpill[o+i] = w.regs[b+s0+i]
			}
			fr.pc++
		}
	case isa.OpSpillLL:
		ii := int(in.Imm)
		return func(w *CWarp) {
			fr := w.fr
			b := fr.base
			o := fr.locBase + ii
			for i := 0; i < wn; i++ {
				w.regs[b+d+i] = w.locSpill[o+i]
			}
			fr.pc++
		}
	case isa.OpBra:
		tgt := int(in.Tgt)
		return func(w *CWarp) { w.fr.pc = tgt }
	case isa.OpCbr:
		tgt := int(in.Tgt)
		return func(w *CWarp) {
			fr := w.fr
			if w.regs[fr.base+s0] != 0 {
				fr.pc = tgt
			} else {
				fr.pc++
			}
		}
	case isa.OpBar:
		// Synchronization is a timing concern; functionally a no-op.
		return func(w *CWarp) { w.fr.pc++ }
	case isa.OpCall:
		callee := int(in.Tgt)
		bk := c.layout.callBase[fi][c.layout.callIndex[fi][pc]]
		cf := c.prog.Funcs[callee]
		calleeName := cf.Name
		calleeFrame := c.layout.frameSize[callee]
		numArgs := cf.NumArgs
		retRel := -1
		if in.Dst != isa.RegNone {
			retRel = d
		}
		shInc := c.layout.sharedSlots[fi]
		locInc := c.layout.localSlots[fi]
		srcs := [3]int{s0, s1, s2}
		return func(w *CWarp) {
			fr := w.fr
			newBase := fr.base + bk
			if newBase+calleeFrame > regFileSize {
				w.err = fmt.Errorf("interp: register file overflow calling %s", calleeName)
				return
			}
			retDst := -1
			if retRel >= 0 {
				retDst = fr.base + retRel
			}
			// ABI: read every argument before writing any (see Warp.Step).
			var argv [3]uint32
			for a := 0; a < numArgs; a++ {
				argv[a] = w.regs[fr.base+srcs[a]]
			}
			for a := 0; a < numArgs; a++ {
				w.regs[newBase+a] = argv[a]
			}
			nf := frame{
				fn:      callee,
				base:    newBase,
				shBase:  fr.shBase + shInc,
				locBase: fr.locBase + locInc,
				retDst:  retDst,
			}
			fr.pc++ // return address
			w.stack = append(w.stack, nf)
			w.fr = &w.stack[len(w.stack)-1]
			w.code = w.c.code[callee]
		}
	case isa.OpRet:
		hasRV := in.Src[0] != isa.RegNone
		return func(w *CWarp) {
			fr := w.fr
			var rv uint32
			if hasRV {
				rv = w.regs[fr.base+s0]
			}
			retDst := fr.retDst
			w.stack = w.stack[:len(w.stack)-1]
			if retDst >= 0 && hasRV {
				w.regs[retDst] = rv
			}
			w.fr = &w.stack[len(w.stack)-1]
			w.code = w.c.code[w.fr.fn]
		}
	case isa.OpExit:
		return func(w *CWarp) { w.done = true }
	default:
		op := in.Op
		return func(w *CWarp) { w.err = fmt.Errorf("interp: cannot execute %s", op) }
	}
}

// fuse rewrites hot two-instruction patterns into superinstructions. The
// head closure performs both instructions' warp-private effects and latches
// the control-flow successor; the tail closure shrinks to a pc update. A
// tail must not be a branch target (it would then also execute unfused via
// its own entry, but the head could be skipped), so branch-target leaders
// are excluded; return addresses cannot be tails because a tail's only
// predecessor is its head, which is never a CALL. Fused pairs never chain.
func (c *Compiled) fuse(f *isa.Function, code []cop) {
	n := len(f.Instrs)
	leader := make([]bool, n+1)
	for i := 0; i < n; i++ {
		switch f.Instrs[i].Op {
		case isa.OpBra, isa.OpCbr:
			if t := int(f.Instrs[i].Tgt); t >= 0 && t < n {
				leader[t] = true
			}
		}
	}
	for i := 0; i+1 < n; i++ {
		if leader[i+1] {
			continue
		}
		head, tail := fusePair(&f.Instrs[i], &f.Instrs[i+1], i)
		if head != nil {
			code[i].exec = head
			code[i+1].exec = tail
			i++
		}
	}
}

// incTail is the trivial tail of a fused pair whose head already advanced
// the warp's architectural state: it only consumes the second pc slot.
func incTail(w *CWarp) { w.fr.pc++ }

// fusedBranchTail redirects control to the successor the fused
// compare+branch head latched in fusedPC.
func fusedBranchTail(w *CWarp) { w.fr.pc = int(w.fusedPC) }

func fusePair(h, t *isa.Instr, pc int) (head, tail func(*CWarp)) {
	// Family 1: compare feeding a conditional branch (loop back edges).
	if t.Op == isa.OpCbr && t.Src[0] == h.Dst && h.W() == 1 &&
		(h.Op == isa.OpISet || h.Op == isa.OpFSet) {
		d, a, b2 := int(h.Dst), int(h.Src[0]), int(h.Src[1])
		cmp := h.Cmp
		tgt := int32(t.Tgt)
		fall := int32(pc + 2)
		if h.Op == isa.OpISet {
			head = func(w *CWarp) {
				fr := w.fr
				b := fr.base
				taken := cmpInt(cmp, int32(w.regs[b+a]), int32(w.regs[b+b2]))
				w.regs[b+d] = boolWord(taken)
				if taken {
					w.fusedPC = tgt
				} else {
					w.fusedPC = fall
				}
				fr.pc++
			}
		} else {
			head = func(w *CWarp) {
				fr := w.fr
				b := fr.base
				x := math.Float32frombits(w.regs[b+a])
				y := math.Float32frombits(w.regs[b+b2])
				taken := cmpFloat(cmp, x, y)
				w.regs[b+d] = boolWord(taken)
				if taken {
					w.fusedPC = tgt
				} else {
					w.fusedPC = fall
				}
				fr.pc++
			}
		}
		return head, fusedBranchTail
	}
	// Family 2: constant feeding an ALU op (MOVI k; ALU d,x,y). Both
	// writes happen in program order inside the head, so operand aliasing
	// (x or y being the constant's register) behaves exactly as unfused.
	if h.Op == isa.OpMovI && h.W() == 1 {
		if head := moviALUHead(t, int(h.Dst), uint32(h.Imm)); head != nil {
			return head, incTail
		}
	}
	// Family 3: single-word load feeding an ALU op (LDG d,[a]; ALU ...).
	if h.Op == isa.OpLdG && h.W() == 1 {
		if head := ldgALUHead(t, int(h.Dst), int(h.Src[0]), uint32(h.Imm)); head != nil {
			return head, incTail
		}
	}
	return nil, nil
}

func moviALUHead(t *isa.Instr, md int, mi uint32) func(*CWarp) {
	if t.W() != 1 {
		return nil
	}
	d, a, b2 := int(t.Dst), int(t.Src[0]), int(t.Src[1])
	switch t.Op {
	case isa.OpIAdd:
		return func(w *CWarp) {
			fr := w.fr
			b := fr.base
			w.regs[b+md] = mi
			w.regs[b+d] = w.regs[b+a] + w.regs[b+b2]
			fr.pc++
		}
	case isa.OpISub:
		return func(w *CWarp) {
			fr := w.fr
			b := fr.base
			w.regs[b+md] = mi
			w.regs[b+d] = w.regs[b+a] - w.regs[b+b2]
			fr.pc++
		}
	case isa.OpIMul:
		return func(w *CWarp) {
			fr := w.fr
			b := fr.base
			w.regs[b+md] = mi
			w.regs[b+d] = w.regs[b+a] * w.regs[b+b2]
			fr.pc++
		}
	case isa.OpAnd:
		return func(w *CWarp) {
			fr := w.fr
			b := fr.base
			w.regs[b+md] = mi
			w.regs[b+d] = w.regs[b+a] & w.regs[b+b2]
			fr.pc++
		}
	case isa.OpOr:
		return func(w *CWarp) {
			fr := w.fr
			b := fr.base
			w.regs[b+md] = mi
			w.regs[b+d] = w.regs[b+a] | w.regs[b+b2]
			fr.pc++
		}
	case isa.OpXor:
		return func(w *CWarp) {
			fr := w.fr
			b := fr.base
			w.regs[b+md] = mi
			w.regs[b+d] = w.regs[b+a] ^ w.regs[b+b2]
			fr.pc++
		}
	case isa.OpShl:
		return func(w *CWarp) {
			fr := w.fr
			b := fr.base
			w.regs[b+md] = mi
			w.regs[b+d] = w.regs[b+a] << (w.regs[b+b2] & 31)
			fr.pc++
		}
	case isa.OpShr:
		return func(w *CWarp) {
			fr := w.fr
			b := fr.base
			w.regs[b+md] = mi
			w.regs[b+d] = w.regs[b+a] >> (w.regs[b+b2] & 31)
			fr.pc++
		}
	}
	return nil
}

func ldgALUHead(t *isa.Instr, ld, la int, li uint32) func(*CWarp) {
	if t.W() != 1 {
		return nil
	}
	d, a, b2 := int(t.Dst), int(t.Src[0]), int(t.Src[1])
	switch t.Op {
	case isa.OpIAdd:
		return func(w *CWarp) {
			fr := w.fr
			b := fr.base
			w.regs[b+ld] = GlobalData(w.regs[b+la] + li)
			w.regs[b+d] = w.regs[b+a] + w.regs[b+b2]
			fr.pc++
		}
	case isa.OpISub:
		return func(w *CWarp) {
			fr := w.fr
			b := fr.base
			w.regs[b+ld] = GlobalData(w.regs[b+la] + li)
			w.regs[b+d] = w.regs[b+a] - w.regs[b+b2]
			fr.pc++
		}
	case isa.OpIMul:
		return func(w *CWarp) {
			fr := w.fr
			b := fr.base
			w.regs[b+ld] = GlobalData(w.regs[b+la] + li)
			w.regs[b+d] = w.regs[b+a] * w.regs[b+b2]
			fr.pc++
		}
	case isa.OpAnd:
		return func(w *CWarp) {
			fr := w.fr
			b := fr.base
			w.regs[b+ld] = GlobalData(w.regs[b+la] + li)
			w.regs[b+d] = w.regs[b+a] & w.regs[b+b2]
			fr.pc++
		}
	case isa.OpOr:
		return func(w *CWarp) {
			fr := w.fr
			b := fr.base
			w.regs[b+ld] = GlobalData(w.regs[b+la] + li)
			w.regs[b+d] = w.regs[b+a] | w.regs[b+b2]
			fr.pc++
		}
	case isa.OpXor:
		return func(w *CWarp) {
			fr := w.fr
			b := fr.base
			w.regs[b+ld] = GlobalData(w.regs[b+la] + li)
			w.regs[b+d] = w.regs[b+a] ^ w.regs[b+b2]
			fr.pc++
		}
	case isa.OpShl:
		return func(w *CWarp) {
			fr := w.fr
			b := fr.base
			w.regs[b+ld] = GlobalData(w.regs[b+la] + li)
			w.regs[b+d] = w.regs[b+a] << (w.regs[b+b2] & 31)
			fr.pc++
		}
	case isa.OpShr:
		return func(w *CWarp) {
			fr := w.fr
			b := fr.base
			w.regs[b+ld] = GlobalData(w.regs[b+la] + li)
			w.regs[b+d] = w.regs[b+a] >> (w.regs[b+b2] & 31)
			fr.pc++
		}
	}
	return nil
}
