package interp

import (
	"math"
	"testing"

	"repro/internal/isa"
)

func run(t *testing.T, src string, warps int) *Result {
	t.Helper()
	p, err := isa.Parse(src)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	res, err := Run(&Launch{Prog: p, GridWarps: warps}, 100000)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	return res
}

func TestArithmetic(t *testing.T) {
	// Compute (7+5)*3 - 6 = 30 and store it; verify via a kernel that
	// stores a comparison against the expected value.
	src := `
.kernel arith
.blockdim 32
.func main
  MOVI v0, 7
  MOVI v1, 5
  IADD v2, v0, v1
  MOVI v3, 3
  IMUL v4, v2, v3
  MOVI v5, 6
  ISUB v6, v4, v5
  MOVI v7, 30
  ISET.EQ v8, v6, v7
  MOVI v9, 4096
  STG [v9], v8
  EXIT
`
	res := run(t, src, 1)
	// A kernel storing value 1 at 4096 must have same checksum as the
	// direct construction.
	var want uint64 = fnvOffset
	want = (want ^ 4096) * fnvPrime
	want = (want ^ 1) * fnvPrime
	want = MixWarpChecksum(0, want)
	if res.Checksum != want {
		t.Errorf("checksum = %x, want %x (comparison failed in kernel)", res.Checksum, want)
	}
}

func TestFloatOps(t *testing.T) {
	src := `
.kernel fp
.blockdim 32
.func main
  MOVI v0, 1077936128   ; 3.0f
  MOVI v1, 1073741824   ; 2.0f
  FMUL v2, v0, v1       ; 6.0
  FADD v3, v2, v1       ; 8.0
  FSUB v4, v3, v0       ; 5.0
  FFMA v5, v0, v1, v4   ; 11.0
  FSET.GT v6, v5, v3    ; 1
  F2I v7, v5            ; 11
  MOVI v8, 8192
  STG [v8], v7
  STG [v8+4], v6
  EXIT
`
	res := run(t, src, 1)
	var want uint64 = fnvOffset
	want = (want ^ 8192) * fnvPrime
	want = (want ^ 11) * fnvPrime
	want = (want ^ 8196) * fnvPrime
	want = (want ^ 1) * fnvPrime
	want = MixWarpChecksum(0, want)
	if res.Checksum != want {
		t.Errorf("checksum = %x, want %x", res.Checksum, want)
	}
	if math.Float32bits(3.0) != 1077936128 || math.Float32bits(2.0) != 1073741824 {
		t.Fatal("test constants wrong")
	}
}

func TestLoopAndBranch(t *testing.T) {
	// Sum 0..9 = 45.
	src := `
.kernel loop
.blockdim 32
.func main
  MOVI v0, 0   ; i
  MOVI v1, 0   ; sum
  MOVI v2, 10
  MOVI v3, 1
top:
  IADD v1, v1, v0
  IADD v0, v0, v3
  ISET.LT v4, v0, v2
  CBR v4, top
  MOVI v5, 100
  STG [v5], v1
  EXIT
`
	res := run(t, src, 1)
	var want uint64 = fnvOffset
	want = (want ^ 100) * fnvPrime
	want = (want ^ 45) * fnvPrime
	want = MixWarpChecksum(0, want)
	if res.Checksum != want {
		t.Errorf("checksum = %x, want %x", res.Checksum, want)
	}
	if res.Steps != 4+4*10+3 {
		t.Errorf("steps = %d, want %d", res.Steps, 4+4*10+3)
	}
}

func TestCallsAndFrames(t *testing.T) {
	// square(x) = x*x via call; main computes square(6)+square(7) = 85.
	src := `
.kernel call
.blockdim 32
.func main
  MOVI v0, 6
  MOVI v1, 7
  CALL v2, square, v0
  CALL v3, square, v1
  IADD v4, v2, v3
  MOVI v5, 200
  STG [v5], v4
  EXIT
.func square args 1 ret
  IMUL v1, v0, v0
  RET v1
`
	res := run(t, src, 1)
	var want uint64 = fnvOffset
	want = (want ^ 200) * fnvPrime
	want = (want ^ 85) * fnvPrime
	want = MixWarpChecksum(0, want)
	if res.Checksum != want {
		t.Errorf("checksum = %x, want %x", res.Checksum, want)
	}
}

func TestNestedCallsPreserveCaller(t *testing.T) {
	// The callee writes its own registers; the caller's live registers
	// across the call must be unaffected (frames are disjoint pre-alloc).
	src := `
.kernel nest
.blockdim 32
.func main
  MOVI v0, 11
  MOVI v1, 22
  MOVI v2, 33
  CALL v3, chain, v0
  IADD v4, v1, v2     ; 55, must survive the call
  IADD v5, v4, v3
  MOVI v6, 300
  STG [v6], v5
  EXIT
.func chain args 1 ret
  MOVI v1, 1000
  CALL v2, leaf, v1
  IADD v3, v2, v0
  RET v3
.func leaf args 1 ret
  MOVI v1, 5
  IADD v2, v0, v1
  RET v2
`
	// leaf(1000)=1005; chain(11)=1016; main: 55+1016=1071.
	res := run(t, src, 1)
	var want uint64 = fnvOffset
	want = (want ^ 300) * fnvPrime
	want = (want ^ 1071) * fnvPrime
	want = MixWarpChecksum(0, want)
	if res.Checksum != want {
		t.Errorf("checksum = %x, want %x", res.Checksum, want)
	}
}

func TestSpecialRegisters(t *testing.T) {
	src := `
.kernel sp
.blockdim 64
.func main
  RDSP v0, WARPID
  RDSP v1, BLOCKID
  RDSP v2, WARPINBLK
  RDSP v3, WARPSPERBLK
  MOVI v4, 4
  SHL v5, v0, v4       ; warpid * 16
  STG [v5], v1
  STG [v5+4], v2
  STG [v5+8], v3
  EXIT
`
	res := run(t, src, 4) // 2 blocks of 2 warps
	var want uint64
	for w := 0; w < 4; w++ {
		var h uint64 = fnvOffset
		addr := uint64(w * 16)
		h = (h ^ addr) * fnvPrime
		h = (h ^ uint64(w/2)) * fnvPrime // block id
		h = (h ^ (addr + 4)) * fnvPrime
		h = (h ^ uint64(w%2)) * fnvPrime // warp in block
		h = (h ^ (addr + 8)) * fnvPrime
		h = (h ^ 2) * fnvPrime // warps per block
		want ^= MixWarpChecksum(w, h)
	}
	if res.Checksum != want {
		t.Errorf("checksum = %x, want %x", res.Checksum, want)
	}
}

func TestGlobalLoadsDeterministic(t *testing.T) {
	src := `
.kernel det
.blockdim 32
.func main
  MOVI v0, 512
  LDG v1, [v0]
  LDG v2, [v0+4]
  XOR v3, v1, v2
  STG [v0+64], v3
  EXIT
`
	a := run(t, src, 1)
	b := run(t, src, 1)
	if a.Checksum != b.Checksum {
		t.Error("global loads nondeterministic")
	}
	var want uint64 = fnvOffset
	want = (want ^ (512 + 64)) * fnvPrime
	want = (want ^ uint64(GlobalData(512)^GlobalData(516))) * fnvPrime
	want = MixWarpChecksum(0, want)
	if a.Checksum != want {
		t.Errorf("checksum = %x, want %x", a.Checksum, want)
	}
}

func TestSharedMemory(t *testing.T) {
	src := `
.kernel sh
.shared 256
.blockdim 32
.func main
  MOVI v0, 16
  MOVI v1, 777
  STS [v0], v1
  LDS v2, [v0]
  MOVI v3, 0
  STG [v3], v2
  EXIT
`
	res := run(t, src, 1)
	var want uint64 = fnvOffset
	want = (want ^ 0) * fnvPrime
	want = (want ^ 777) * fnvPrime
	want = MixWarpChecksum(0, want)
	if res.Checksum != want {
		t.Errorf("checksum = %x, want %x", res.Checksum, want)
	}
}

func TestSpillSlots(t *testing.T) {
	src := `
.kernel spill
.blockdim 32
.func main
  MOVI v0, 41
  MOVI v1, 59
  SPST.S 0, v0
  SPST.L 0, v1
  MOVI v0, 0
  MOVI v1, 0
  SPLD.S v2, 0
  SPLD.L v3, 0
  IADD v4, v2, v3
  MOVI v5, 128
  STG [v5], v4
  EXIT
`
	p := isa.MustParse(src)
	p.Entry().SpillShared = 1
	p.Entry().SpillLocal = 1
	res, err := Run(&Launch{Prog: p, GridWarps: 2}, 1000)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	var one uint64 = fnvOffset
	one = (one ^ 128) * fnvPrime
	one = (one ^ 100) * fnvPrime
	// The per-warp mix keeps identical store streams from cancelling
	// under XOR: each warp contributes its stream hash bound to its ID.
	if want := MixWarpChecksum(0, one) ^ MixWarpChecksum(1, one); res.Checksum != want {
		t.Errorf("checksum = %x, want %x", res.Checksum, want)
	}
	// Single warp yields the concrete hash.
	res1, err := Run(&Launch{Prog: p, GridWarps: 1}, 1000)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res1.Checksum != MixWarpChecksum(0, one) {
		t.Errorf("checksum = %x, want %x", res1.Checksum, MixWarpChecksum(0, one))
	}
}

func TestWideOps(t *testing.T) {
	src := `
.kernel wide
.blockdim 32
.func main
  MOVI v0, 1024
  LDG.64 v2, [v0]
  MOV.64 v4, v2
  XOR v6, v4, v5
  STG [v0+32], v6
  EXIT
`
	res := run(t, src, 1)
	var want uint64 = fnvOffset
	want = (want ^ (1024 + 32)) * fnvPrime
	want = (want ^ uint64(GlobalData(1024)^GlobalData(1028))) * fnvPrime
	want = MixWarpChecksum(0, want)
	if res.Checksum != want {
		t.Errorf("checksum = %x, want %x", res.Checksum, want)
	}
}

func TestStepLimit(t *testing.T) {
	src := `
.kernel inf
.blockdim 32
.func main
top:
  BRA top
  EXIT
`
	p := isa.MustParse(src)
	_, err := Run(&Launch{Prog: p, GridWarps: 1}, 100)
	if err == nil {
		t.Fatal("expected step-limit error")
	}
}

func TestKernelSplitOffsets(t *testing.T) {
	// Running warps [0,8) in one launch must equal running [0,4) and
	// [4,8) as two split launches (paper §3.4 kernel splitting).
	src := `
.kernel split
.blockdim 64
.func main
  RDSP v0, WARPID
  MOVI v1, 6
  SHL v2, v0, v1
  LDG v3, [v2]
  IADD v4, v3, v0
  STG [v2+16], v4
  EXIT
`
	p := isa.MustParse(src)
	full, err := Run(&Launch{Prog: p, GridWarps: 8}, 10000)
	if err != nil {
		t.Fatalf("full: %v", err)
	}
	a, err := Run(&Launch{Prog: p, GridWarps: 4}, 10000)
	if err != nil {
		t.Fatalf("a: %v", err)
	}
	b, err := Run(&Launch{Prog: p, GridWarps: 4, FirstWarp: 4}, 10000)
	if err != nil {
		t.Fatalf("b: %v", err)
	}
	if got := a.Checksum ^ b.Checksum; got != full.Checksum {
		t.Errorf("split checksum %x != full %x", got, full.Checksum)
	}
}

func TestLayoutHighWater(t *testing.T) {
	src := `
.kernel hw
.blockdim 32
.func main
  MOVI v0, 1
  MOVI v9, 1
  CALL v1, a, v0
  CALL v2, b, v0
  EXIT
.func a args 1 ret
  MOVI v1, 2
  MOVI v4, 2
  CALL v2, b, v1
  RET v2
.func b args 1 ret
  MOVI v1, 3
  RET v1
`
	p := isa.MustParse(src)
	layout, err := NewLayout(p)
	if err != nil {
		t.Fatalf("NewLayout: %v", err)
	}
	// main uses v0..v9 (10 regs), a uses v0..v4 (5), b uses v0..v1 (2).
	// Deepest chain: main(10) + a(5) + b(2) = 17.
	if layout.RegHighWater != 17 {
		t.Errorf("RegHighWater = %d, want 17", layout.RegHighWater)
	}
}

func TestLayoutWithCallBounds(t *testing.T) {
	src := `
.kernel cb
.blockdim 32
.func main
  MOVI v0, 1
  MOVI v5, 2
  CALL v1, f, v0
  EXIT
.func f args 1 ret
  MOVI v1, 3
  RET v1
`
	p := isa.MustParse(src)
	// Pretend allocation compressed main's 6-slot frame to 3 live slots at
	// the call.
	p.Entry().Allocated = true
	p.Entry().FrameSlots = 6
	p.Entry().CallBounds = []int{3}
	f := p.FuncByName("f")
	f.Allocated = true
	f.FrameSlots = 2
	layout, err := NewLayout(p)
	if err != nil {
		t.Fatalf("NewLayout: %v", err)
	}
	if layout.RegHighWater != 6 { // max(main frame 6, 3+2=5)
		t.Errorf("RegHighWater = %d, want 6", layout.RegHighWater)
	}
}
