package interp

import (
	"fmt"
	"math"
	"testing"

	"repro/internal/isa"
)

// evalOp runs a two-operand op on constants and returns the result stored
// to a known address.
func evalOp(t *testing.T, mnem string, a, b uint32) uint32 {
	t.Helper()
	src := fmt.Sprintf(`
.kernel op
.blockdim 32
.func main
  MOVI v0, %d
  MOVI v1, %d
  %s v2, v0, v1
  MOVI v3, 64
  STG [v3], v2
  EXIT
`, int32(a), int32(b), mnem)
	p, err := isa.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	layout, err := NewLayout(p)
	if err != nil {
		t.Fatalf("layout: %v", err)
	}
	w := NewWarp(&Launch{Prog: p, GridWarps: 1}, layout, 0, nil)
	var stored uint32
	for !w.Done() {
		ev := w.Peek()
		if ev.Kind == KindStore {
			// Value is in the register feeding the store.
			stored = w.regs[ev.AbsSrc[1]]
		}
		if _, err := w.Step(); err != nil {
			t.Fatalf("step: %v", err)
		}
	}
	return stored
}

func fbits(f float32) uint32 { return math.Float32bits(f) }

func TestIntegerOps(t *testing.T) {
	cases := []struct {
		mnem string
		a, b uint32
		want uint32
	}{
		{"IADD", 7, 5, 12},
		{"ISUB", 7, 9, 0xFFFFFFFE},
		{"IMUL", 6, 7, 42},
		{"IMIN", 0xFFFFFFFF, 1, 0xFFFFFFFF}, // -1 < 1 signed
		{"IMAX", 0xFFFFFFFF, 1, 1},
		{"AND", 0b1100, 0b1010, 0b1000},
		{"OR", 0b1100, 0b1010, 0b1110},
		{"XOR", 0b1100, 0b1010, 0b0110},
		{"SHL", 3, 4, 48},
		{"SHL", 1, 33, 2}, // shift masked to 5 bits
		{"SHR", 0x80000000, 31, 1},
		{"ISET.LT", 3, 5, 1},
		{"ISET.LT", 5, 3, 0},
		{"ISET.GE", 5, 5, 1},
		{"ISET.NE", 5, 5, 0},
		{"ISET.EQ", 5, 5, 1},
		{"ISET.LE", 4, 5, 1},
		{"ISET.GT", 4, 5, 0},
		{"ISET.LT", 0xFFFFFFFF, 0, 1}, // signed: -1 < 0
	}
	for _, tc := range cases {
		if got := evalOp(t, tc.mnem, tc.a, tc.b); got != tc.want {
			t.Errorf("%s(%#x, %#x) = %#x, want %#x", tc.mnem, tc.a, tc.b, got, tc.want)
		}
	}
}

func TestFloatBinaryOps(t *testing.T) {
	cases := []struct {
		mnem string
		a, b float32
		want float32
	}{
		{"FADD", 1.5, 2.25, 3.75},
		{"FSUB", 1.0, 3.0, -2.0},
		{"FMUL", 2.5, 4.0, 10.0},
		{"FMIN", 2.5, -4.0, -4.0},
		{"FMAX", 2.5, -4.0, 2.5},
	}
	for _, tc := range cases {
		if got := evalOp(t, tc.mnem, fbits(tc.a), fbits(tc.b)); got != fbits(tc.want) {
			t.Errorf("%s(%v, %v) = %#x, want %v", tc.mnem, tc.a, tc.b, got, tc.want)
		}
	}
	if got := evalOp(t, "FSET.LT", fbits(1), fbits(2)); got != 1 {
		t.Errorf("FSET.LT(1,2) = %d, want 1", got)
	}
	if got := evalOp(t, "FSET.GE", fbits(1), fbits(2)); got != 0 {
		t.Errorf("FSET.GE(1,2) = %d, want 0", got)
	}
}

func TestConversions(t *testing.T) {
	src := `
.kernel conv
.blockdim 32
.func main
  MOVI v0, -7
  I2F v1, v0
  F2I v2, v1
  MOVI v3, 0
  STG [v3], v2
  EXIT
`
	p := isa.MustParse(src)
	res, err := Run(&Launch{Prog: p, GridWarps: 1}, 1000)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	var want uint64 = fnvOffset
	want = (want ^ 0) * fnvPrime
	want = (want ^ uint64(uint32(0xFFFFFFF9))) * fnvPrime // -7 round-trips
	want = MixWarpChecksum(0, want)
	if res.Checksum != want {
		t.Errorf("checksum %x, want %x", res.Checksum, want)
	}
}

func TestF2ISaturation(t *testing.T) {
	// NaN -> 0; +huge -> MaxInt32; -huge -> MinInt32.
	cases := []struct {
		in   float32
		want int32
	}{
		{float32(math.NaN()), 0},
		{float32(math.Inf(1)), math.MaxInt32},
		{float32(math.Inf(-1)), math.MinInt32},
		{1e30, math.MaxInt32},
		{-1e30, math.MinInt32},
		{42.9, 42},
		{-42.9, -42},
	}
	for _, tc := range cases {
		src := fmt.Sprintf(`
.kernel f2i
.blockdim 32
.func main
  MOVI v0, %d
  F2I v1, v0
  MOVI v2, 0
  STG [v2], v1
  EXIT
`, int32(math.Float32bits(tc.in)))
		p := isa.MustParse(src)
		res, err := Run(&Launch{Prog: p, GridWarps: 1}, 1000)
		if err != nil {
			t.Fatalf("Run: %v", err)
		}
		var want uint64 = fnvOffset
		want = (want ^ 0) * fnvPrime
		want = (want ^ uint64(uint32(tc.want))) * fnvPrime
		want = MixWarpChecksum(0, want)
		if res.Checksum != want {
			t.Errorf("F2I(%v): checksum %x, want value %d", tc.in, res.Checksum, tc.want)
		}
	}
}

func TestIMadAndMovI(t *testing.T) {
	src := `
.kernel mad
.blockdim 32
.func main
  MOVI v0, 6
  MOVI v1, 7
  MOVI v2, 100
  IMAD v3, v0, v1, v2
  MOVI v4, 0
  STG [v4], v3
  EXIT
`
	p := isa.MustParse(src)
	res, err := Run(&Launch{Prog: p, GridWarps: 1}, 1000)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	var want uint64 = fnvOffset
	want = (want ^ 0) * fnvPrime
	want = (want ^ 142) * fnvPrime
	want = MixWarpChecksum(0, want)
	if res.Checksum != want {
		t.Errorf("IMAD checksum %x, want 142", res.Checksum)
	}
}

func TestFFmaChain(t *testing.T) {
	src := fmt.Sprintf(`
.kernel ffma
.blockdim 32
.func main
  MOVI v0, %d
  MOVI v1, %d
  MOVI v2, %d
  FFMA v3, v0, v1, v2
  MOVI v4, 0
  STG [v4], v3
  EXIT
`, int32(fbits(2)), int32(fbits(3)), int32(fbits(0.5)))
	p := isa.MustParse(src)
	res, err := Run(&Launch{Prog: p, GridWarps: 1}, 1000)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	var want uint64 = fnvOffset
	want = (want ^ 0) * fnvPrime
	want = (want ^ uint64(fbits(6.5))) * fnvPrime
	want = MixWarpChecksum(0, want)
	if res.Checksum != want {
		t.Errorf("FFMA checksum %x, want 6.5", res.Checksum)
	}
}

func TestGlobalDataStable(t *testing.T) {
	// The pseudo-content function is part of the reproducibility contract:
	// fixed values here guard against accidental changes.
	if GlobalData(0) == GlobalData(4) {
		t.Error("adjacent words identical")
	}
	a := GlobalData(1024)
	for i := 0; i < 3; i++ {
		if GlobalData(1024) != a {
			t.Fatal("GlobalData not pure")
		}
	}
	// Word granularity: byte addresses within one word agree.
	if GlobalData(1025) != GlobalData(1024) {
		t.Error("sub-word addresses disagree")
	}
}
