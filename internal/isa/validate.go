package isa

import (
	"errors"
	"fmt"
)

// ErrRecursion is returned when the call graph contains a cycle; OASM,
// like the paper's GPU target, forbids recursion so that frame bases can
// be assigned statically.
var ErrRecursion = errors.New("isa: recursive call graph")

// Validate checks structural invariants of a program: opcode validity,
// branch targets in range, call targets defined and non-recursive, widths
// legal, the entry function taking no args, every path ending in a
// terminator, and all operands in bounds — registers within the declared
// frame (NumVRegs before allocation, FrameSlots after), spill slots within
// the declared spill counts, and call bounds within the frame. Operand
// bounds make decoded binaries safe to feed to the middle end and the
// interpreter: out-of-range registers or slots would otherwise index past
// internal arrays.
func Validate(p *Program) error {
	if len(p.Funcs) == 0 {
		return errors.New("isa: program has no functions")
	}
	if p.BlockDim <= 0 || p.BlockDim%32 != 0 {
		return fmt.Errorf("isa: block dim %d must be a positive multiple of 32", p.BlockDim)
	}
	names := make(map[string]bool, len(p.Funcs))
	for _, f := range p.Funcs {
		if f.Name == "" {
			return errors.New("isa: function with empty name")
		}
		if names[f.Name] {
			return fmt.Errorf("isa: duplicate function %q", f.Name)
		}
		names[f.Name] = true
	}
	if p.Entry().NumArgs != 0 {
		return fmt.Errorf("isa: entry %q must take no arguments", p.Entry().Name)
	}
	for fi, f := range p.Funcs {
		if err := validateFunc(p, fi, f); err != nil {
			return err
		}
	}
	return checkAcyclic(p)
}

func validateFunc(p *Program, fi int, f *Function) error {
	if len(f.Instrs) == 0 {
		return fmt.Errorf("isa: function %q is empty", f.Name)
	}
	// Registers live in the virtual frame before allocation and the
	// physical frame after; either way every operand must fit.
	bound := f.NumVRegs
	if f.Allocated {
		bound = f.FrameSlots
	}
	if bound < 0 {
		return fmt.Errorf("isa: %s: negative frame size", f.Name)
	}
	if f.NumArgs < 0 {
		return fmt.Errorf("isa: %s: negative arg count", f.Name)
	}
	if f.NumArgs > 3 {
		return fmt.Errorf("isa: %s: %d args exceeds the 3-register call ABI", f.Name, f.NumArgs)
	}
	if f.NumArgs > bound {
		return fmt.Errorf("isa: %s: %d args exceed frame size %d", f.Name, f.NumArgs, bound)
	}
	if f.SpillShared < 0 || f.SpillLocal < 0 {
		return fmt.Errorf("isa: %s: negative spill slot count", f.Name)
	}
	checkReg := func(i int, r Reg, w int, what string) error {
		if r == RegNone {
			return fmt.Errorf("isa: %s[%d]: missing %s operand", f.Name, i, what)
		}
		if int(r)+w > bound {
			return fmt.Errorf("isa: %s[%d]: %s v%d width %d exceeds frame size %d",
				f.Name, i, what, r, w, bound)
		}
		return nil
	}
	calls := 0
	for i := range f.Instrs {
		in := &f.Instrs[i]
		if in.Op == OpInvalid || in.Op >= opMax {
			return fmt.Errorf("isa: %s[%d]: invalid opcode", f.Name, i)
		}
		if in.Width > 4 {
			return fmt.Errorf("isa: %s[%d]: bad width %d", f.Name, i, in.Width)
		}
		if in.Cmp > CmpGT {
			return fmt.Errorf("isa: %s[%d]: invalid comparison %d", f.Name, i, in.Cmp)
		}
		if in.Sp > SpLaneID {
			return fmt.Errorf("isa: %s[%d]: invalid special register %d", f.Name, i, in.Sp)
		}
		if in.HasDst() {
			if err := checkReg(i, in.Dst, in.W(), "destination"); err != nil {
				return err
			}
		}
		for s := 0; s < in.NumSrcs(); s++ {
			if err := checkReg(i, in.Src[s], in.SrcWidth(s), "source"); err != nil {
				return err
			}
		}
		switch in.Op {
		case OpSpillSS, OpSpillSL:
			if in.Imm < 0 || int(in.Imm)+in.W() > f.SpillShared {
				return fmt.Errorf("isa: %s[%d]: shared spill slot %d width %d exceeds %d slots",
					f.Name, i, in.Imm, in.W(), f.SpillShared)
			}
		case OpSpillLS, OpSpillLL:
			if in.Imm < 0 || int(in.Imm)+in.W() > f.SpillLocal {
				return fmt.Errorf("isa: %s[%d]: local spill slot %d width %d exceeds %d slots",
					f.Name, i, in.Imm, in.W(), f.SpillLocal)
			}
		case OpCall:
			calls++
		}
		switch in.Op {
		case OpBra, OpCbr:
			if in.Tgt < 0 || int(in.Tgt) >= len(f.Instrs) {
				return fmt.Errorf("isa: %s[%d]: branch target %d out of range", f.Name, i, in.Tgt)
			}
		case OpCall:
			if in.Tgt < 0 || int(in.Tgt) >= len(p.Funcs) {
				return fmt.Errorf("isa: %s[%d]: call target %d out of range", f.Name, i, in.Tgt)
			}
			callee := p.Funcs[in.Tgt]
			if in.NumSrcs() != callee.NumArgs {
				return fmt.Errorf("isa: %s[%d]: call to %q passes %d args, wants %d",
					f.Name, i, callee.Name, in.NumSrcs(), callee.NumArgs)
			}
			if (in.Dst != RegNone) && !callee.HasRet {
				return fmt.Errorf("isa: %s[%d]: call captures result of void %q", f.Name, i, callee.Name)
			}
		case OpRet:
			if fi == 0 {
				return fmt.Errorf("isa: %s[%d]: RET in entry function (use EXIT)", f.Name, i)
			}
			if f.HasRet && in.Src[0] == RegNone {
				return fmt.Errorf("isa: %s[%d]: RET without value in value-returning function", f.Name, i)
			}
		case OpExit:
			if fi != 0 {
				return fmt.Errorf("isa: %s[%d]: EXIT outside entry function", f.Name, i)
			}
		case OpISet, OpFSet:
			if in.Cmp == CmpNone {
				return fmt.Errorf("isa: %s[%d]: set without comparison", f.Name, i)
			}
		case OpRdSp:
			if in.Sp == SpNone {
				return fmt.Errorf("isa: %s[%d]: RDSP without special register", f.Name, i)
			}
		}
	}
	last := &f.Instrs[len(f.Instrs)-1]
	if !last.Terminates() {
		return fmt.Errorf("isa: %s: control falls off the end", f.Name)
	}
	if f.CallBounds != nil {
		if len(f.CallBounds) != calls {
			return fmt.Errorf("isa: %s: %d call bounds for %d call sites",
				f.Name, len(f.CallBounds), calls)
		}
		for k, bk := range f.CallBounds {
			if bk < 0 || bk > bound {
				return fmt.Errorf("isa: %s: call bound %d at site %d outside frame size %d",
					f.Name, bk, k, bound)
			}
		}
	}
	return nil
}

func checkAcyclic(p *Program) error {
	const (
		unvisited = 0
		inStack   = 1
		done      = 2
	)
	state := make([]int, len(p.Funcs))
	var visit func(fi int) error
	visit = func(fi int) error {
		switch state[fi] {
		case inStack:
			return ErrRecursion
		case done:
			return nil
		}
		state[fi] = inStack
		f := p.Funcs[fi]
		for i := range f.Instrs {
			if f.Instrs[i].Op == OpCall {
				if err := visit(int(f.Instrs[i].Tgt)); err != nil {
					return err
				}
			}
		}
		state[fi] = done
		return nil
	}
	for fi := range p.Funcs {
		if err := visit(fi); err != nil {
			return err
		}
	}
	return nil
}
