package isa

import (
	"crypto/sha256"
	"encoding/hex"
)

// Fingerprint is a stable content hash of a program. Two programs have
// equal fingerprints iff their ORN1 encodings are byte-identical, which
// covers everything the compiler and simulator consume: every function's
// instructions, flags, frame metadata, call bounds, plus the program's
// name, shared-memory size, and block dimension.
type Fingerprint [sha256.Size]byte

// String renders the fingerprint as lowercase hex.
func (f Fingerprint) String() string { return hex.EncodeToString(f[:]) }

// Fingerprint computes the program's content hash (over its binary
// encoding). It is the content-addressed identity the realization cache
// keys on: callers must not mutate the program after fingerprinting it.
func (p *Program) Fingerprint() Fingerprint {
	return sha256.Sum256(Encode(p))
}
