package isa

import (
	"strings"
	"testing"
)

const sampleSrc = `
.kernel sample
.shared 1024
.blockdim 128
.func main
  RDSP v0, WARPID
  MOVI v1, 7
  IADD v2, v0, v1
  SHL v3, v2, v1
  LDG v4, [v3+16]
  LDG.64 v6, [v3]
  FADD v8, v4, v6
  STG [v3+32], v8
  LDS v9, [v1]
  STS [v1+4], v9
  ISET.LT v10, v0, v1
  CBR v10, done
  CALL v11, helper, v2, v4
  IMAD v12, v11, v2, v4
  BAR
done:
  EXIT
.func helper args 2 ret
  FMUL v2, v0, v1
  ISET.GE v3, v2, v0
  CBR v3, out
  FADD v2, v2, v1
out:
  RET v2
`

func parseSample(t *testing.T) *Program {
	t.Helper()
	p, err := Parse(sampleSrc)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	return p
}

func TestParseBasics(t *testing.T) {
	p := parseSample(t)
	if p.Name != "sample" {
		t.Errorf("name = %q, want sample", p.Name)
	}
	if p.SharedBytes != 1024 {
		t.Errorf("shared = %d, want 1024", p.SharedBytes)
	}
	if p.BlockDim != 128 {
		t.Errorf("blockdim = %d, want 128", p.BlockDim)
	}
	if len(p.Funcs) != 2 {
		t.Fatalf("funcs = %d, want 2", len(p.Funcs))
	}
	main := p.Entry()
	if got := len(main.Instrs); got != 16 {
		t.Errorf("main instrs = %d, want 16", got)
	}
	helper := p.FuncByName("helper")
	if helper == nil || helper.NumArgs != 2 || !helper.HasRet {
		t.Fatalf("helper = %+v", helper)
	}
	// CBR in main targets EXIT (index 15).
	cbr := main.Instrs[11]
	if cbr.Op != OpCbr || cbr.Tgt != 15 {
		t.Errorf("cbr = %+v, want target 15", cbr)
	}
	call := main.Instrs[12]
	if call.Op != OpCall || int(call.Tgt) != p.FuncIndex("helper") {
		t.Errorf("call = %+v", call)
	}
	if call.NumSrcs() != 2 {
		t.Errorf("call srcs = %d, want 2", call.NumSrcs())
	}
	wide := main.Instrs[5]
	if wide.Op != OpLdG || wide.W() != 2 || wide.Dst != 6 {
		t.Errorf("wide load = %+v", wide)
	}
	if err := Validate(p); err != nil {
		t.Errorf("Validate: %v", err)
	}
}

func TestCountVRegs(t *testing.T) {
	p := parseSample(t)
	// Highest register touched in main: v12; wide LDG.64 v6 touches v6,v7.
	if got := p.Entry().NumVRegs; got != 13 {
		t.Errorf("main NumVRegs = %d, want 13", got)
	}
	if got := p.FuncByName("helper").NumVRegs; got != 4 {
		t.Errorf("helper NumVRegs = %d, want 4", got)
	}
}

func TestFormatParseRoundTrip(t *testing.T) {
	p := parseSample(t)
	text := Format(p)
	p2, err := Parse(text)
	if err != nil {
		t.Fatalf("reparse: %v\n%s", err, text)
	}
	if Format(p2) != text {
		t.Errorf("format not stable:\n--- first\n%s\n--- second\n%s", text, Format(p2))
	}
	if len(p2.Funcs) != len(p.Funcs) {
		t.Fatalf("func count changed")
	}
	for i := range p.Funcs {
		a, b := p.Funcs[i], p2.Funcs[i]
		if len(a.Instrs) != len(b.Instrs) {
			t.Fatalf("func %s: %d vs %d instrs", a.Name, len(a.Instrs), len(b.Instrs))
		}
		for j := range a.Instrs {
			x, y := a.Instrs[j], b.Instrs[j]
			x.Label, y.Label = "", ""
			if x != y {
				t.Errorf("%s[%d]: %+v != %+v", a.Name, j, x, y)
			}
		}
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		name string
		src  string
		want string
	}{
		{"no kernel", ".func main\n EXIT\n", "missing .kernel"},
		{"bad opcode", ".kernel k\n.func main\n FROB v1, v2, v3\n EXIT\n", "unknown opcode"},
		{"bad label", ".kernel k\n.func main\n BRA nowhere\n EXIT\n", "undefined label"},
		{"bad call", ".kernel k\n.func main\n CALL v1, nope\n EXIT\n", "undefined function"},
		{"instr outside func", ".kernel k\n IADD v1, v2, v3\n", "outside .func"},
		{"operand count", ".kernel k\n.func main\n IADD v1, v2\n EXIT\n", "expects 3 operands"},
		{"bad register", ".kernel k\n.func main\n MOV v1, x9\n EXIT\n", "bad register"},
		{"set needs cmp", ".kernel k\n.func main\n ISET v1, v2, v3\n EXIT\n", ".CMP suffix"},
		{"dup label", ".kernel k\n.func main\na:\n EXIT\na:\n EXIT\n", "duplicate label"},
		{"bad width", ".kernel k\n.func main\n LDG.48 v1, [v2]\n EXIT\n", "bad width"},
		{"trailing label", ".kernel k\n.func main\n EXIT\nend:\n", "no instruction"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Parse(tc.src)
			if err == nil {
				t.Fatalf("expected error containing %q, got nil", tc.want)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not contain %q", err, tc.want)
			}
		})
	}
}

func TestValidateRejects(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Program)
		want   string
	}{
		{"fallthrough", func(p *Program) {
			f := p.Entry()
			f.Instrs = append(f.Instrs, Instr{Op: OpIAdd, Dst: 1, Src: [3]Reg{1, 1, RegNone}})
		}, "falls off the end"},
		{"branch range", func(p *Program) {
			f := p.Entry()
			for i := range f.Instrs {
				if f.Instrs[i].Op == OpCbr {
					f.Instrs[i].Tgt = 999
				}
			}
		}, "out of range"},
		{"exit in func", func(p *Program) {
			f := p.FuncByName("helper")
			f.Instrs[len(f.Instrs)-1] = Instr{Op: OpExit}
		}, "EXIT outside entry"},
		{"arity", func(p *Program) {
			f := p.Entry()
			for i := range f.Instrs {
				if f.Instrs[i].Op == OpCall {
					f.Instrs[i].Src[1] = RegNone
				}
			}
		}, "wants 2"},
		{"bad blockdim", func(p *Program) { p.BlockDim = 100 }, "multiple of 32"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p := parseSample(t)
			tc.mutate(p)
			err := Validate(p)
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Errorf("Validate = %v, want containing %q", err, tc.want)
			}
		})
	}
}

func TestValidateRecursion(t *testing.T) {
	src := `
.kernel k
.func main
  CALL _, a
  EXIT
.func a
  CALL _, b
  RET
.func b
  CALL _, a
  RET
`
	p, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if err := Validate(p); err != ErrRecursion {
		t.Errorf("Validate = %v, want ErrRecursion", err)
	}
}

func TestInstrQueries(t *testing.T) {
	cases := []struct {
		in    Instr
		dst   bool
		nsrcs int
	}{
		{Instr{Op: OpIAdd, Dst: 1, Src: [3]Reg{2, 3, RegNone}}, true, 2},
		{Instr{Op: OpIMad, Dst: 1, Src: [3]Reg{2, 3, 4}}, true, 3},
		{Instr{Op: OpStG, Src: [3]Reg{2, 3, RegNone}}, false, 2},
		{Instr{Op: OpMovI, Dst: 1, Imm: 5}, true, 0},
		{Instr{Op: OpBra}, false, 0},
		{Instr{Op: OpCbr, Src: [3]Reg{1, RegNone, RegNone}}, false, 1},
		{Instr{Op: OpRet, Src: [3]Reg{RegNone, RegNone, RegNone}}, false, 0},
		{Instr{Op: OpRet, Src: [3]Reg{5, RegNone, RegNone}}, false, 1},
		{Instr{Op: OpCall, Dst: RegNone, Src: [3]Reg{1, 2, RegNone}}, false, 2},
		{Instr{Op: OpCall, Dst: 7, Src: [3]Reg{RegNone, RegNone, RegNone}}, true, 0},
		{Instr{Op: OpSpillSS, Src: [3]Reg{4, RegNone, RegNone}, Imm: 2}, false, 1},
		{Instr{Op: OpSpillLL, Dst: 4, Imm: 2}, true, 0},
		{Instr{Op: OpExit}, false, 0},
	}
	for i, tc := range cases {
		if got := tc.in.HasDst(); got != tc.dst {
			t.Errorf("case %d (%s): HasDst = %v, want %v", i, tc.in.Op, got, tc.dst)
		}
		if got := tc.in.NumSrcs(); got != tc.nsrcs {
			t.Errorf("case %d (%s): NumSrcs = %d, want %d", i, tc.in.Op, got, tc.nsrcs)
		}
	}
}

func TestSrcWidth(t *testing.T) {
	mov := Instr{Op: OpMov, Width: 2, Dst: 0, Src: [3]Reg{4, RegNone, RegNone}}
	if mov.SrcWidth(0) != 2 {
		t.Errorf("wide mov src width = %d, want 2", mov.SrcWidth(0))
	}
	st := Instr{Op: OpStG, Width: 4, Src: [3]Reg{1, 4, RegNone}}
	if st.SrcWidth(0) != 1 || st.SrcWidth(1) != 4 {
		t.Errorf("wide store widths = %d,%d want 1,4", st.SrcWidth(0), st.SrcWidth(1))
	}
}

func TestAlignFor(t *testing.T) {
	want := map[int]int{1: 1, 2: 2, 3: 4, 4: 4}
	for w, a := range want {
		if got := AlignFor(w); got != a {
			t.Errorf("AlignFor(%d) = %d, want %d", w, got, a)
		}
	}
}

func TestProgramQueries(t *testing.T) {
	p := parseSample(t)
	if got := p.StaticCalls(); got != 1 {
		t.Errorf("StaticCalls = %d, want 1", got)
	}
	if !p.UsesUserShared() {
		t.Error("UsesUserShared = false, want true")
	}
	q := p.Clone()
	q.Funcs[0].Instrs[0].Op = OpExit
	if p.Funcs[0].Instrs[0].Op == OpExit {
		t.Error("Clone shares instruction storage")
	}
}
