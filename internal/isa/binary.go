package isa

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Binary container format ("ORN1"). The Orion compiler, like the paper's,
// consumes and produces binaries: front end decodes, back end re-encodes.
//
// Layout (little endian):
//
//	magic   [4]byte "ORN1"
//	name    string (u16 length + bytes)
//	shared  u32
//	blockdim u32
//	nfuncs  u16
//	per function:
//	  name      string
//	  flags     u8   (bit0: HasRet, bit1: Allocated)
//	  numArgs   u8
//	  numVRegs  u16
//	  frame     u16
//	  spillS    u16
//	  spillL    u16
//	  ninstr    u32
//	  instrs    ninstr * 16 bytes
//	  nbounds   u16 + bounds u16 each
//
// Instruction word (16 bytes): op u8, width u8, cmp u8, sp u8,
// dst u16, src0 u16, src1 u16, src2 u16, imm i32 — with Tgt packed into
// imm for branches (imm unused there) is NOT done; instead Tgt gets its
// own slot by reusing src2 for branches/calls? No: branches/calls never
// use all three sources, but CALL can. We therefore widen to 20 bytes:
// ... imm i32, tgt i32.
const binMagic = "ORN1"

var errBadMagic = errors.New("isa: bad binary magic")

const instrBytes = 20

// Encode serializes the program to the ORN1 binary format.
func Encode(p *Program) []byte {
	var b bytes.Buffer
	b.WriteString(binMagic)
	writeString(&b, p.Name)
	writeU32(&b, uint32(p.SharedBytes))
	writeU32(&b, uint32(p.BlockDim))
	writeU16(&b, uint16(len(p.Funcs)))
	for _, f := range p.Funcs {
		writeString(&b, f.Name)
		var flags uint8
		if f.HasRet {
			flags |= 1
		}
		if f.Allocated {
			flags |= 2
		}
		b.WriteByte(flags)
		b.WriteByte(uint8(f.NumArgs))
		writeU16(&b, uint16(f.NumVRegs))
		writeU16(&b, uint16(f.FrameSlots))
		writeU16(&b, uint16(f.SpillShared))
		writeU16(&b, uint16(f.SpillLocal))
		writeU32(&b, uint32(len(f.Instrs)))
		for i := range f.Instrs {
			in := &f.Instrs[i]
			b.WriteByte(uint8(in.Op))
			b.WriteByte(in.Width)
			b.WriteByte(uint8(in.Cmp))
			b.WriteByte(uint8(in.Sp))
			writeU16(&b, uint16(in.Dst))
			writeU16(&b, uint16(in.Src[0]))
			writeU16(&b, uint16(in.Src[1]))
			writeU16(&b, uint16(in.Src[2]))
			writeU32(&b, uint32(in.Imm))
			writeU32(&b, uint32(in.Tgt))
		}
		writeU16(&b, uint16(len(f.CallBounds)))
		for _, cb := range f.CallBounds {
			writeU16(&b, uint16(cb))
		}
	}
	return b.Bytes()
}

// Decode parses an ORN1 binary produced by Encode.
func Decode(data []byte) (*Program, error) {
	r := &reader{data: data}
	magic := r.bytes(4)
	if r.err != nil || string(magic) != binMagic {
		return nil, errBadMagic
	}
	p := &Program{}
	p.Name = r.string()
	p.SharedBytes = int(r.u32())
	p.BlockDim = int(r.u32())
	nf := int(r.u16())
	if r.err != nil {
		return nil, r.err
	}
	if nf == 0 || nf > 1<<12 {
		return nil, fmt.Errorf("isa: implausible function count %d", nf)
	}
	p.Funcs = make([]*Function, 0, nf)
	for fi := 0; fi < nf; fi++ {
		f := &Function{}
		f.Name = r.string()
		flags := r.u8()
		f.HasRet = flags&1 != 0
		f.Allocated = flags&2 != 0
		f.NumArgs = int(r.u8())
		f.NumVRegs = int(r.u16())
		f.FrameSlots = int(r.u16())
		f.SpillShared = int(r.u16())
		f.SpillLocal = int(r.u16())
		ni := int(r.u32())
		if r.err != nil {
			return nil, r.err
		}
		if ni > len(r.data)/instrBytes+1 {
			return nil, fmt.Errorf("isa: implausible instruction count %d", ni)
		}
		f.Instrs = make([]Instr, ni)
		for i := 0; i < ni; i++ {
			in := &f.Instrs[i]
			in.Op = Op(r.u8())
			in.Width = r.u8()
			in.Cmp = Cmp(r.u8())
			in.Sp = Sp(r.u8())
			in.Dst = Reg(r.u16())
			in.Src[0] = Reg(r.u16())
			in.Src[1] = Reg(r.u16())
			in.Src[2] = Reg(r.u16())
			in.Imm = int32(r.u32())
			in.Tgt = int32(r.u32())
			if in.Op == OpCall && int(in.Tgt) < nf {
				// Label names are restored after all functions decode.
				in.Label = ""
			}
		}
		nb := int(r.u16())
		if nb > 0 {
			f.CallBounds = make([]int, nb)
			for i := range f.CallBounds {
				f.CallBounds[i] = int(r.u16())
			}
		}
		if r.err != nil {
			return nil, r.err
		}
		p.Funcs = append(p.Funcs, f)
	}
	// Restore call labels now that all function names are known.
	for _, f := range p.Funcs {
		for i := range f.Instrs {
			in := &f.Instrs[i]
			if in.Op == OpCall {
				if int(in.Tgt) >= len(p.Funcs) || in.Tgt < 0 {
					return nil, fmt.Errorf("isa: call target %d out of range", in.Tgt)
				}
				in.Label = p.Funcs[in.Tgt].Name
			}
		}
	}
	return p, nil
}

type reader struct {
	data []byte
	off  int
	err  error
}

func (r *reader) bytes(n int) []byte {
	if r.err != nil {
		return nil
	}
	if r.off+n > len(r.data) {
		r.err = io.ErrUnexpectedEOF
		return nil
	}
	b := r.data[r.off : r.off+n]
	r.off += n
	return b
}

func (r *reader) u8() uint8 {
	b := r.bytes(1)
	if b == nil {
		return 0
	}
	return b[0]
}

func (r *reader) u16() uint16 {
	b := r.bytes(2)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint16(b)
}

func (r *reader) u32() uint32 {
	b := r.bytes(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

func (r *reader) string() string {
	n := int(r.u16())
	b := r.bytes(n)
	if b == nil {
		return ""
	}
	return string(b)
}

func writeU16(b *bytes.Buffer, v uint16) {
	var tmp [2]byte
	binary.LittleEndian.PutUint16(tmp[:], v)
	b.Write(tmp[:])
}

func writeU32(b *bytes.Buffer, v uint32) {
	var tmp [4]byte
	binary.LittleEndian.PutUint32(tmp[:], v)
	b.Write(tmp[:])
}

func writeString(b *bytes.Buffer, s string) {
	writeU16(b, uint16(len(s)))
	b.WriteString(s)
}
