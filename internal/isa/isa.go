// Package isa defines the OASM virtual GPU instruction set that the Orion
// reproduction operates on. It plays the role that NVIDIA SASS plays in the
// paper: the compiler decodes binaries into this representation, transforms
// them, and encodes them back. The package provides the instruction model, a
// text assembler/disassembler, a binary encoder/decoder, and validation.
//
// OASM is deliberately SASS-like where it matters for occupancy tuning:
// flat virtual registers with wide (64/96/128-bit) classes that demand
// aligned consecutive physical registers, explicit global/shared/local
// memory spaces, dedicated spill-slot instructions, barriers, and
// non-inlined procedure calls with a frame-relative register convention
// (the substrate for the paper's compressible stack).
package isa

import "fmt"

// Op enumerates OASM opcodes.
type Op uint8

// Opcode values. The zero value is invalid so that uninitialized
// instructions are caught by validation.
const (
	OpInvalid Op = iota

	// Integer ALU.
	OpIAdd // dst = src0 + src1
	OpISub // dst = src0 - src1
	OpIMul // dst = src0 * src1
	OpIMad // dst = src0 * src1 + src2
	OpIMin // dst = min(src0, src1) (signed)
	OpIMax // dst = max(src0, src1) (signed)
	OpAnd  // dst = src0 & src1
	OpOr   // dst = src0 | src1
	OpXor  // dst = src0 ^ src1
	OpShl  // dst = src0 << (src1 & 31)
	OpShr  // dst = src0 >> (src1 & 31) (logical)
	OpISet // dst = cmp(src0, src1) ? 1 : 0 (signed compare, Cmp field)

	// Float ALU (32-bit IEEE stored in the low word).
	OpFAdd // dst = src0 + src1
	OpFSub // dst = src0 - src1
	OpFMul // dst = src0 * src1
	OpFFma // dst = src0 * src1 + src2
	OpFMin // dst = min(src0, src1)
	OpFMax // dst = max(src0, src1)
	OpFSet // dst = cmp(src0, src1) ? 1 : 0 (float compare, Cmp field)
	OpF2I  // dst = int32(float(src0))
	OpI2F  // dst = float(int32(src0))

	// Moves.
	OpMov  // dst = src0 (width may be >1: moves a wide variable)
	OpMovI // dst = Imm

	// Special-register read.
	OpRdSp // dst = special register (Sp field)

	// Memory. Addresses are byte addresses in the low word of src0
	// (plus Imm). Width selects 32/64/96/128-bit transfers.
	OpLdG // dst = global[src0 + Imm]
	OpStG // global[src0 + Imm] = src1
	OpLdS // dst = shared[src0 + Imm] (user shared memory, block-local)
	OpStS // shared[src0 + Imm] = src1

	// Spill-slot accesses. The slot index is Imm; the compiler assigns
	// slots, and the hardware maps them to a per-thread partition of
	// shared memory (SpillS*) or to local memory backed by L1 (SpillL*).
	OpSpillSS // sharedspill[Imm] = src1
	OpSpillSL // dst = sharedspill[Imm]
	OpSpillLS // localspill[Imm] = src1
	OpSpillLL // dst = localspill[Imm]

	// Control flow.
	OpBra  // unconditional branch to TargetIdx
	OpCbr  // branch to TargetIdx if src0 != 0
	OpCall // call function FuncIdx: dst = f(src0, src1, src2)
	OpRet  // return src0 (RegNone for void)
	OpBar  // block-wide barrier
	OpExit // thread exit (kernel only)

	opMax // sentinel
)

// Cmp enumerates comparison operators for OpISet/OpFSet.
type Cmp uint8

// Comparison operators.
const (
	CmpNone Cmp = iota
	CmpLT
	CmpLE
	CmpEQ
	CmpNE
	CmpGE
	CmpGT
)

// Sp enumerates special registers readable with OpRdSp.
type Sp uint8

// Special registers. Values are per-warp: the interpreter executes at warp
// granularity (see package interp).
const (
	SpNone        Sp = iota
	SpWarpID         // global warp index within the grid
	SpBlockID        // block index within the grid
	SpWarpInBlk      // warp index within its block
	SpNumWarps       // total warps in the grid
	SpWarpsPerBlk    // warps per block
	SpSMID           // streaming multiprocessor the warp runs on
	SpLaneID         // lane within the warp (0..31); lane-variant (SIMT mode)
)

// Reg identifies a register operand. Before allocation registers are
// virtual (dense indices); after allocation they are frame-relative
// physical indices. RegNone marks an absent operand.
type Reg uint16

// RegNone is the absent-operand sentinel.
const RegNone Reg = 0xFFFF

// MaxRegs bounds physical register indices representable per thread.
const MaxRegs = 256

// Instr is a single OASM instruction. The same struct represents both
// virtual-register and allocated forms.
type Instr struct {
	Op    Op
	Width uint8 // register slots touched by Dst (1, 2, 3, or 4); 0 means 1
	Cmp   Cmp   // for OpISet / OpFSet
	Sp    Sp    // for OpRdSp
	Dst   Reg
	Src   [3]Reg
	Imm   int32  // immediate / byte offset / spill slot
	Tgt   int32  // branch target instruction index, or callee function index
	Label string // optional branch-target label (resolved into Tgt)
}

// W returns the effective width (treating 0 as 1).
func (in *Instr) W() int {
	if in.Width == 0 {
		return 1
	}
	return int(in.Width)
}

// HasDst reports whether the instruction writes a register.
func (in *Instr) HasDst() bool {
	switch in.Op {
	case OpStG, OpStS, OpSpillSS, OpSpillLS, OpBra, OpCbr, OpRet, OpBar, OpExit:
		return false
	case OpCall:
		return in.Dst != RegNone
	default:
		return true
	}
}

// NumSrcs returns how many source operands the instruction reads.
func (in *Instr) NumSrcs() int {
	switch in.Op {
	case OpMovI, OpRdSp, OpSpillSL, OpSpillLL, OpBra, OpBar, OpExit:
		return 0
	case OpRet:
		if in.Src[0] == RegNone {
			return 0
		}
		return 1
	case OpMov, OpF2I, OpI2F, OpLdG, OpLdS, OpCbr, OpSpillSS, OpSpillLS:
		return 1
	case OpIMad, OpFFma:
		return 3
	case OpCall:
		n := 0
		for _, s := range in.Src {
			if s == RegNone {
				break
			}
			n++
		}
		return n
	default:
		return 2
	}
}

// SrcWidth returns the register-slot width of source operand i. Sources are
// word-sized except for wide moves, wide stores (value operand), and wide
// returns, which mirror the instruction width.
func (in *Instr) SrcWidth(i int) int {
	switch in.Op {
	case OpMov, OpRet:
		if i == 0 {
			return in.W()
		}
	case OpStG, OpStS:
		if i == 1 {
			return in.W()
		}
	case OpSpillSS, OpSpillLS:
		if i == 0 {
			return in.W()
		}
	}
	return 1
}

// IsBranch reports whether the instruction transfers control to Tgt.
func (in *Instr) IsBranch() bool { return in.Op == OpBra || in.Op == OpCbr }

// IsMem reports whether the instruction accesses a memory space (excluding
// spill slots, which are memory too but are reported by IsSpill).
func (in *Instr) IsMem() bool {
	switch in.Op {
	case OpLdG, OpStG, OpLdS, OpStS:
		return true
	}
	return false
}

// IsSpill reports whether the instruction is compiler-inserted spill
// traffic.
func (in *Instr) IsSpill() bool {
	switch in.Op {
	case OpSpillSS, OpSpillSL, OpSpillLS, OpSpillLL:
		return true
	}
	return false
}

// Terminates reports whether control never falls through this instruction.
func (in *Instr) Terminates() bool {
	switch in.Op {
	case OpBra, OpRet, OpExit:
		return true
	}
	return false
}

// Function is one procedure: the kernel entry or a callable device
// function. Instructions reference virtual registers densely numbered
// [0, NumVRegs) before allocation; after allocation NumVRegs is the frame
// size in physical register slots.
type Function struct {
	Name     string
	NumArgs  int  // arguments arrive in virtual registers 0..NumArgs-1
	HasRet   bool // whether the function produces a value
	NumVRegs int  // virtual register count (pre-alloc) or frame size (post-alloc)
	Instrs   []Instr

	// Allocated is set once register allocation has run; operands are then
	// frame-relative physical registers.
	Allocated bool
	// FrameSlots is the number of on-chip slots (registers) this function's
	// frame occupies after allocation.
	FrameSlots int
	// SpillShared and SpillLocal count per-thread spill slots used.
	SpillShared int
	SpillLocal  int
	// CallBounds[k] is the compressed caller stack height (the paper's Bk)
	// for the k-th static call instruction in this function, in instruction
	// order. Populated by inter-procedural allocation.
	CallBounds []int
}

// Clone deep-copies the function.
func (f *Function) Clone() *Function {
	nf := *f
	nf.Instrs = make([]Instr, len(f.Instrs))
	copy(nf.Instrs, f.Instrs)
	if f.CallBounds != nil {
		nf.CallBounds = append([]int(nil), f.CallBounds...)
	}
	return &nf
}

// Program is a compiled kernel: the entry function plus device functions.
type Program struct {
	Name        string
	SharedBytes int // user-declared shared memory per block
	BlockDim    int // threads per block at launch
	Funcs       []*Function
}

// Entry returns the kernel entry function (Funcs[0]).
func (p *Program) Entry() *Function { return p.Funcs[0] }

// FuncByName returns the function with the given name, or nil.
func (p *Program) FuncByName(name string) *Function {
	for _, f := range p.Funcs {
		if f.Name == name {
			return f
		}
	}
	return nil
}

// FuncIndex returns the index of the named function, or -1.
func (p *Program) FuncIndex(name string) int {
	for i, f := range p.Funcs {
		if f.Name == name {
			return i
		}
	}
	return -1
}

// Clone deep-copies the program.
func (p *Program) Clone() *Program {
	np := *p
	np.Funcs = make([]*Function, len(p.Funcs))
	for i, f := range p.Funcs {
		np.Funcs[i] = f.Clone()
	}
	return &np
}

// StaticCalls returns the total number of static call instructions across
// all functions (paper Table 2, "Func" column).
func (p *Program) StaticCalls() int {
	n := 0
	for _, f := range p.Funcs {
		for i := range f.Instrs {
			if f.Instrs[i].Op == OpCall {
				n++
			}
		}
	}
	return n
}

// UsesLaneID reports whether the program reads the lane index — the
// marker for lane-variant (SIMT-mode) kernels.
func (p *Program) UsesLaneID() bool {
	for _, f := range p.Funcs {
		for i := range f.Instrs {
			if f.Instrs[i].Op == OpRdSp && f.Instrs[i].Sp == SpLaneID {
				return true
			}
		}
	}
	return false
}

// UsesUserShared reports whether any function accesses user shared memory
// (paper Table 2, "Smem" column).
func (p *Program) UsesUserShared() bool {
	if p.SharedBytes > 0 {
		return true
	}
	for _, f := range p.Funcs {
		for i := range f.Instrs {
			if f.Instrs[i].Op == OpLdS || f.Instrs[i].Op == OpStS {
				return true
			}
		}
	}
	return false
}

var opNames = [...]string{
	OpInvalid: "INVALID",
	OpIAdd:    "IADD", OpISub: "ISUB", OpIMul: "IMUL", OpIMad: "IMAD",
	OpIMin: "IMIN", OpIMax: "IMAX",
	OpAnd: "AND", OpOr: "OR", OpXor: "XOR", OpShl: "SHL", OpShr: "SHR",
	OpISet: "ISET",
	OpFAdd: "FADD", OpFSub: "FSUB", OpFMul: "FMUL", OpFFma: "FFMA",
	OpFMin: "FMIN", OpFMax: "FMAX", OpFSet: "FSET", OpF2I: "F2I", OpI2F: "I2F",
	OpMov: "MOV", OpMovI: "MOVI", OpRdSp: "RDSP",
	OpLdG: "LDG", OpStG: "STG", OpLdS: "LDS", OpStS: "STS",
	OpSpillSS: "SPST.S", OpSpillSL: "SPLD.S",
	OpSpillLS: "SPST.L", OpSpillLL: "SPLD.L",
	OpBra: "BRA", OpCbr: "CBR", OpCall: "CALL", OpRet: "RET",
	OpBar: "BAR", OpExit: "EXIT",
}

// String returns the mnemonic for the opcode.
func (o Op) String() string {
	if int(o) < len(opNames) && opNames[o] != "" {
		return opNames[o]
	}
	return fmt.Sprintf("OP(%d)", int(o))
}

var cmpNames = [...]string{
	CmpNone: "", CmpLT: "LT", CmpLE: "LE", CmpEQ: "EQ",
	CmpNE: "NE", CmpGE: "GE", CmpGT: "GT",
}

// String returns the comparison mnemonic.
func (c Cmp) String() string {
	if int(c) < len(cmpNames) {
		return cmpNames[c]
	}
	return fmt.Sprintf("CMP(%d)", int(c))
}

var spNames = [...]string{
	SpNone: "", SpWarpID: "WARPID", SpBlockID: "BLOCKID",
	SpWarpInBlk: "WARPINBLK", SpNumWarps: "NUMWARPS",
	SpWarpsPerBlk: "WARPSPERBLK", SpSMID: "SMID", SpLaneID: "LANEID",
}

// String returns the special-register name.
func (s Sp) String() string {
	if int(s) < len(spNames) {
		return spNames[s]
	}
	return fmt.Sprintf("SP(%d)", int(s))
}

// AlignFor returns the physical register alignment required for a variable
// of the given slot width: 64-bit values need even registers, 96- and
// 128-bit values need 4-aligned registers (mirroring NVIDIA constraints
// referenced in the paper).
func AlignFor(width int) int {
	switch {
	case width >= 3:
		return 4
	case width == 2:
		return 2
	default:
		return 1
	}
}
