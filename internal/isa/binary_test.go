package isa

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestBinaryRoundTrip(t *testing.T) {
	p := parseSample(t)
	p.Funcs[0].Allocated = true
	p.Funcs[0].FrameSlots = 13
	p.Funcs[0].SpillShared = 2
	p.Funcs[0].SpillLocal = 1
	p.Funcs[0].CallBounds = []int{5}
	data := Encode(p)
	q, err := Decode(data)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if q.Name != p.Name || q.SharedBytes != p.SharedBytes || q.BlockDim != p.BlockDim {
		t.Errorf("header mismatch: %+v vs %+v", q, p)
	}
	if len(q.Funcs) != len(p.Funcs) {
		t.Fatalf("func count %d vs %d", len(q.Funcs), len(p.Funcs))
	}
	for i := range p.Funcs {
		a, b := p.Funcs[i], q.Funcs[i]
		if a.Name != b.Name || a.NumArgs != b.NumArgs || a.HasRet != b.HasRet ||
			a.NumVRegs != b.NumVRegs || a.Allocated != b.Allocated ||
			a.FrameSlots != b.FrameSlots || a.SpillShared != b.SpillShared ||
			a.SpillLocal != b.SpillLocal {
			t.Errorf("func %d metadata mismatch: %+v vs %+v", i, a, b)
		}
		if !reflect.DeepEqual(a.CallBounds, b.CallBounds) {
			t.Errorf("func %d call bounds %v vs %v", i, a.CallBounds, b.CallBounds)
		}
		for j := range a.Instrs {
			x, y := a.Instrs[j], b.Instrs[j]
			x.Label, y.Label = "", ""
			if x != y {
				t.Errorf("func %d instr %d: %+v vs %+v", i, j, x, y)
			}
		}
	}
}

func TestDecodeErrors(t *testing.T) {
	if _, err := Decode([]byte("XXXX")); err == nil {
		t.Error("bad magic accepted")
	}
	if _, err := Decode(nil); err == nil {
		t.Error("empty input accepted")
	}
	data := Encode(parseSample(t))
	for _, n := range []int{5, 10, len(data) / 2, len(data) - 1} {
		if _, err := Decode(data[:n]); err == nil {
			t.Errorf("truncation at %d accepted", n)
		}
	}
}

// randomProgram builds a structurally valid random program for the
// encode/decode property test.
func randomProgram(r *rand.Rand) *Program {
	nf := 1 + r.Intn(4)
	p := &Program{
		Name:        "rnd",
		SharedBytes: r.Intn(4096),
		BlockDim:    32 * (1 + r.Intn(8)),
		Funcs:       make([]*Function, nf),
	}
	for fi := range p.Funcs {
		f := &Function{Name: "f" + string(rune('a'+fi))}
		if fi > 0 {
			f.NumArgs = r.Intn(3)
			f.HasRet = r.Intn(2) == 0
		}
		ni := 1 + r.Intn(30)
		for i := 0; i < ni; i++ {
			var in Instr
			switch r.Intn(8) {
			case 0:
				in = Instr{Op: OpIAdd, Dst: Reg(r.Intn(20)), Src: [3]Reg{Reg(r.Intn(20)), Reg(r.Intn(20)), RegNone}}
			case 1:
				in = Instr{Op: OpMovI, Dst: Reg(r.Intn(20)), Imm: int32(r.Uint32())}
			case 2:
				in = Instr{Op: OpLdG, Width: uint8(2 * r.Intn(2)), Dst: Reg(2 * r.Intn(10)), Src: [3]Reg{Reg(r.Intn(20)), RegNone, RegNone}, Imm: int32(r.Intn(256))}
			case 3:
				in = Instr{Op: OpStG, Src: [3]Reg{Reg(r.Intn(20)), Reg(r.Intn(20)), RegNone}}
			case 4:
				in = Instr{Op: OpBra, Tgt: int32(r.Intn(ni))}
			case 5:
				in = Instr{Op: OpCbr, Src: [3]Reg{Reg(r.Intn(20)), RegNone, RegNone}, Tgt: int32(r.Intn(ni))}
			case 6:
				in = Instr{Op: OpISet, Cmp: Cmp(1 + r.Intn(6)), Dst: Reg(r.Intn(20)), Src: [3]Reg{Reg(r.Intn(20)), Reg(r.Intn(20)), RegNone}}
			default:
				in = Instr{Op: OpFFma, Dst: Reg(r.Intn(20)), Src: [3]Reg{Reg(r.Intn(20)), Reg(r.Intn(20)), Reg(r.Intn(20))}}
			}
			for s := in.NumSrcs(); s < 3; s++ {
				in.Src[s] = RegNone
			}
			f.Instrs = append(f.Instrs, in)
		}
		if fi == 0 {
			f.Instrs = append(f.Instrs, Instr{Op: OpExit, Src: [3]Reg{RegNone, RegNone, RegNone}})
		} else {
			ret := Instr{Op: OpRet, Src: [3]Reg{RegNone, RegNone, RegNone}}
			if f.HasRet {
				ret.Src[0] = Reg(r.Intn(20))
			}
			f.Instrs = append(f.Instrs, ret)
		}
		f.NumVRegs = countVRegs(f)
		p.Funcs[fi] = f
	}
	return p
}

func TestBinaryRoundTripProperty(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	prop := func() bool {
		p := randomProgram(r)
		q, err := Decode(Encode(p))
		if err != nil {
			t.Logf("decode: %v", err)
			return false
		}
		if len(q.Funcs) != len(p.Funcs) {
			return false
		}
		for i := range p.Funcs {
			if len(q.Funcs[i].Instrs) != len(p.Funcs[i].Instrs) {
				return false
			}
			for j := range p.Funcs[i].Instrs {
				x, y := p.Funcs[i].Instrs[j], q.Funcs[i].Instrs[j]
				x.Label, y.Label = "", ""
				if x != y {
					return false
				}
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 200}
	if err := quick.Check(prop, cfg); err != nil {
		t.Error(err)
	}
}

func TestTextRoundTripProperty(t *testing.T) {
	// Parse(Format(p)) must reproduce the instruction stream for random
	// branch-heavy programs.
	r := rand.New(rand.NewSource(7))
	prop := func() bool {
		p := randomProgram(r)
		text := Format(p)
		q, err := Parse(text)
		if err != nil {
			t.Logf("reparse: %v\n%s", err, text)
			return false
		}
		for i := range p.Funcs {
			if len(q.Funcs[i].Instrs) != len(p.Funcs[i].Instrs) {
				return false
			}
			for j := range p.Funcs[i].Instrs {
				x, y := p.Funcs[i].Instrs[j], q.Funcs[i].Instrs[j]
				x.Label, y.Label = "", ""
				if x != y {
					t.Logf("func %d instr %d: %+v vs %+v", i, j, x, y)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
