package isa

import "testing"

// FuzzDecode throws arbitrary bytes at the binary decoder. The decoder must
// never panic; anything it accepts that also passes Validate must round-trip
// through Encode/Decode unchanged (the back end re-encodes what the front
// end decoded, so a lossy round trip would silently corrupt binaries).
func FuzzDecode(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte("ORN1"))
	f.Add(Encode(MustParse(sampleSrc)))
	// A structurally damaged program: operands outside the frame.
	broken := MustParse(sampleSrc)
	broken.Funcs[0].Instrs[2].Dst = 9999
	f.Add(Encode(broken))
	// Truncation of a valid binary exercises every reader error path.
	whole := Encode(MustParse(sampleSrc))
	f.Add(whole[:len(whole)-7])
	f.Fuzz(func(t *testing.T, data []byte) {
		p, err := Decode(data)
		if err != nil {
			return
		}
		if Validate(p) != nil {
			return
		}
		out := Encode(p)
		p2, err := Decode(out)
		if err != nil {
			t.Fatalf("re-decoding our own encoding: %v", err)
		}
		if p.Fingerprint() != p2.Fingerprint() {
			t.Fatal("decode/encode round trip changed the program")
		}
	})
}
