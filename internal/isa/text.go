package isa

import (
	"fmt"
	"strconv"
	"strings"
)

// ParseError reports a syntax or semantic error in OASM text with its line.
type ParseError struct {
	Line int
	Msg  string
}

// Error formats the parse error with its line number.
func (e *ParseError) Error() string {
	return fmt.Sprintf("oasm: line %d: %s", e.Line, e.Msg)
}

// Parse assembles OASM text into a Program. The format is line-oriented:
//
//	.kernel NAME            program header (required, first)
//	.shared BYTES           user shared memory per block
//	.blockdim THREADS       threads per block
//	.func NAME [args N] [ret]
//	LABEL:
//	  OP[.W] operands       e.g. IADD v1, v2, v3 / LDG.64 v4, [v2+16]
//	  ; comment or # comment
//
// Registers are v0..vN (virtual). Branch targets are labels. Calls name
// their callee: CALL v1, fname, v2, v3. Void calls: CALL _, fname, v2.
func Parse(src string) (*Program, error) {
	p := &Program{BlockDim: 256}
	var cur *Function
	type fixup struct {
		fn    *Function
		instr int
		line  int
	}
	var callFixups []fixup
	labels := map[string]int{}
	var pending []string // labels awaiting the next instruction

	finishFunc := func(line int) error {
		if cur == nil {
			return nil
		}
		if len(pending) > 0 {
			return &ParseError{line, "label at end of function with no instruction"}
		}
		for i := range cur.Instrs {
			in := &cur.Instrs[i]
			if in.IsBranch() {
				tgt, ok := labels[in.Label]
				if !ok {
					return &ParseError{line, fmt.Sprintf("undefined label %q", in.Label)}
				}
				in.Tgt = int32(tgt)
			}
		}
		labels = map[string]int{}
		return nil
	}

	for lineNo, raw := range strings.Split(src, "\n") {
		line := lineNo + 1
		text := raw
		if i := strings.IndexAny(text, ";#"); i >= 0 {
			text = text[:i]
		}
		text = strings.TrimSpace(text)
		if text == "" {
			continue
		}

		if strings.HasPrefix(text, ".") {
			fields := strings.Fields(text)
			switch fields[0] {
			case ".kernel":
				if len(fields) != 2 {
					return nil, &ParseError{line, ".kernel requires a name"}
				}
				p.Name = fields[1]
			case ".shared":
				if len(fields) != 2 {
					return nil, &ParseError{line, ".shared requires a size"}
				}
				n, err := strconv.Atoi(fields[1])
				if err != nil || n < 0 {
					return nil, &ParseError{line, "bad .shared size"}
				}
				p.SharedBytes = n
			case ".blockdim":
				if len(fields) != 2 {
					return nil, &ParseError{line, ".blockdim requires a thread count"}
				}
				n, err := strconv.Atoi(fields[1])
				if err != nil || n <= 0 {
					return nil, &ParseError{line, "bad .blockdim"}
				}
				p.BlockDim = n
			case ".func":
				if err := finishFunc(line); err != nil {
					return nil, err
				}
				if len(fields) < 2 {
					return nil, &ParseError{line, ".func requires a name"}
				}
				cur = &Function{Name: fields[1]}
				for i := 2; i < len(fields); i++ {
					switch fields[i] {
					case "args":
						if i+1 >= len(fields) {
							return nil, &ParseError{line, "args requires a count"}
						}
						n, err := strconv.Atoi(fields[i+1])
						if err != nil || n < 0 || n > 3 {
							return nil, &ParseError{line, "bad args count (0..3)"}
						}
						cur.NumArgs = n
						i++
					case "ret":
						cur.HasRet = true
					default:
						return nil, &ParseError{line, fmt.Sprintf("unknown .func attribute %q", fields[i])}
					}
				}
				p.Funcs = append(p.Funcs, cur)
			default:
				return nil, &ParseError{line, fmt.Sprintf("unknown directive %q", fields[0])}
			}
			continue
		}

		if cur == nil {
			return nil, &ParseError{line, "instruction outside .func"}
		}

		if strings.HasSuffix(text, ":") && !strings.ContainsAny(text, " \t,") {
			name := strings.TrimSuffix(text, ":")
			if name == "" {
				return nil, &ParseError{line, "empty label"}
			}
			if _, dup := labels[name]; dup {
				return nil, &ParseError{line, fmt.Sprintf("duplicate label %q", name)}
			}
			pending = append(pending, name)
			continue
		}

		in, isCall, err := parseInstr(text, line)
		if err != nil {
			return nil, err
		}
		for _, l := range pending {
			labels[l] = len(cur.Instrs)
		}
		pending = pending[:0]
		if isCall {
			callFixups = append(callFixups, fixup{cur, len(cur.Instrs), line})
		}
		cur.Instrs = append(cur.Instrs, in)
	}
	if err := finishFunc(len(strings.Split(src, "\n"))); err != nil {
		return nil, err
	}
	if p.Name == "" {
		return nil, &ParseError{1, "missing .kernel directive"}
	}
	if len(p.Funcs) == 0 {
		return nil, &ParseError{1, "no functions defined"}
	}

	for _, fx := range callFixups {
		in := &fx.fn.Instrs[fx.instr]
		idx := p.FuncIndex(in.Label)
		if idx < 0 {
			return nil, &ParseError{fx.line, fmt.Sprintf("call to undefined function %q", in.Label)}
		}
		in.Tgt = int32(idx)
	}

	for _, f := range p.Funcs {
		f.NumVRegs = countVRegs(f)
		f.SpillShared, f.SpillLocal = countSpillSlots(f)
	}
	return p, nil
}

// MustParse is Parse that panics on error; for tests and static kernels.
func MustParse(src string) *Program {
	p, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return p
}

func countVRegs(f *Function) int {
	maxr := -1
	upd := func(r Reg, w int) {
		if r == RegNone {
			return
		}
		if end := int(r) + w - 1; end > maxr {
			maxr = end
		}
	}
	for i := range f.Instrs {
		in := &f.Instrs[i]
		if in.HasDst() {
			upd(in.Dst, in.W())
		}
		for s := 0; s < in.NumSrcs(); s++ {
			upd(in.Src[s], in.SrcWidth(s))
		}
	}
	if a := f.NumArgs - 1; a > maxr {
		maxr = a
	}
	return maxr + 1
}

// countSpillSlots derives the per-thread spill footprint from explicit
// spill instructions in the source, so hand-written spill code validates
// and later allocation rounds number fresh slots after the existing ones.
func countSpillSlots(f *Function) (shared, local int) {
	for i := range f.Instrs {
		in := &f.Instrs[i]
		end := int(in.Imm) + in.W()
		switch in.Op {
		case OpSpillSS, OpSpillSL:
			if end > shared {
				shared = end
			}
		case OpSpillLS, OpSpillLL:
			if end > local {
				local = end
			}
		}
	}
	return shared, local
}

func parseInstr(text string, line int) (Instr, bool, error) {
	in := Instr{Src: [3]Reg{RegNone, RegNone, RegNone}}
	sp := strings.IndexAny(text, " \t")
	mnem := text
	rest := ""
	if sp >= 0 {
		mnem = text[:sp]
		rest = strings.TrimSpace(text[sp+1:])
	}

	base := mnem
	if dot := strings.Index(mnem, "."); dot >= 0 {
		// SPST.S / SPLD.S / SPST.L / SPLD.L carry the space in the mnemonic;
		// otherwise the suffix is a width.
		switch mnem {
		case "SPST.S", "SPLD.S", "SPST.L", "SPLD.L":
		default:
			base = mnem[:dot]
			if base == "ISET" || base == "FSET" {
				break // suffix is a comparison, handled below
			}
			switch mnem[dot+1:] {
			case "32":
				in.Width = 1
			case "64":
				in.Width = 2
			case "96":
				in.Width = 3
			case "128":
				in.Width = 4
			default:
				return in, false, &ParseError{line, fmt.Sprintf("bad width suffix in %q", mnem)}
			}
		}
	}

	op, ok := opByName(base, mnem)
	if !ok {
		return in, false, &ParseError{line, fmt.Sprintf("unknown opcode %q", mnem)}
	}
	in.Op = op

	args := splitOperands(rest)
	reg := func(s string) (Reg, error) {
		s = strings.TrimSpace(s)
		if s == "_" {
			return RegNone, nil
		}
		if len(s) < 2 || (s[0] != 'v' && s[0] != 'r') {
			return 0, &ParseError{line, fmt.Sprintf("bad register %q", s)}
		}
		n, err := strconv.Atoi(s[1:])
		if err != nil || n < 0 || n >= int(RegNone) {
			return 0, &ParseError{line, fmt.Sprintf("bad register %q", s)}
		}
		return Reg(n), nil
	}
	imm := func(s string) (int32, error) {
		n, err := strconv.ParseInt(strings.TrimSpace(s), 0, 64)
		if err != nil || n < -(1<<31) || n >= 1<<32 {
			return 0, &ParseError{line, fmt.Sprintf("bad immediate %q", s)}
		}
		return int32(uint32(n)), nil // values in [2^31, 2^32) wrap to the same bits
	}
	// addr parses "[vN]" or "[vN+imm]" into src register and Imm.
	addr := func(s string) (Reg, int32, error) {
		s = strings.TrimSpace(s)
		if !strings.HasPrefix(s, "[") || !strings.HasSuffix(s, "]") {
			return 0, 0, &ParseError{line, fmt.Sprintf("bad address %q", s)}
		}
		inner := s[1 : len(s)-1]
		off := int32(0)
		if plus := strings.IndexByte(inner, '+'); plus >= 0 {
			o, err := imm(inner[plus+1:])
			if err != nil {
				return 0, 0, err
			}
			off = o
			inner = inner[:plus]
		}
		r, err := reg(inner)
		if err != nil {
			return 0, 0, err
		}
		return r, off, nil
	}
	need := func(n int) error {
		if len(args) != n {
			return &ParseError{line, fmt.Sprintf("%s expects %d operands, got %d", mnem, n, len(args))}
		}
		return nil
	}

	var err error
	switch op {
	case OpIAdd, OpISub, OpIMul, OpIMin, OpIMax, OpAnd, OpOr, OpXor,
		OpShl, OpShr, OpFAdd, OpFSub, OpFMul, OpFMin, OpFMax:
		if err = need(3); err != nil {
			return in, false, err
		}
		if in.Dst, err = reg(args[0]); err == nil {
			if in.Src[0], err = reg(args[1]); err == nil {
				in.Src[1], err = reg(args[2])
			}
		}
	case OpIMad, OpFFma:
		if err = need(4); err != nil {
			return in, false, err
		}
		if in.Dst, err = reg(args[0]); err == nil {
			if in.Src[0], err = reg(args[1]); err == nil {
				if in.Src[1], err = reg(args[2]); err == nil {
					in.Src[2], err = reg(args[3])
				}
			}
		}
	case OpISet, OpFSet:
		// ISET.LT v1, v2, v3
		if err = need(3); err != nil {
			return in, false, err
		}
		var c Cmp
		if dot := strings.LastIndex(mnem, "."); dot >= 0 {
			c = cmpByName(mnem[dot+1:])
		}
		if c == CmpNone {
			return in, false, &ParseError{line, fmt.Sprintf("%s requires a .CMP suffix (LT/LE/EQ/NE/GE/GT)", base)}
		}
		in.Cmp = c
		in.Width = 0
		if in.Dst, err = reg(args[0]); err == nil {
			if in.Src[0], err = reg(args[1]); err == nil {
				in.Src[1], err = reg(args[2])
			}
		}
	case OpMov, OpF2I, OpI2F:
		if err = need(2); err != nil {
			return in, false, err
		}
		if in.Dst, err = reg(args[0]); err == nil {
			in.Src[0], err = reg(args[1])
		}
	case OpMovI:
		if err = need(2); err != nil {
			return in, false, err
		}
		if in.Dst, err = reg(args[0]); err == nil {
			in.Imm, err = imm(args[1])
		}
	case OpRdSp:
		if err = need(2); err != nil {
			return in, false, err
		}
		if in.Dst, err = reg(args[0]); err == nil {
			in.Sp = spByName(strings.TrimSpace(args[1]))
			if in.Sp == SpNone {
				err = &ParseError{line, fmt.Sprintf("unknown special register %q", args[1])}
			}
		}
	case OpLdG, OpLdS:
		if err = need(2); err != nil {
			return in, false, err
		}
		if in.Dst, err = reg(args[0]); err == nil {
			in.Src[0], in.Imm, err = addr(args[1])
		}
	case OpStG, OpStS:
		if err = need(2); err != nil {
			return in, false, err
		}
		if in.Src[0], in.Imm, err = addr(args[0]); err == nil {
			in.Src[1], err = reg(args[1])
		}
	case OpSpillSS, OpSpillLS:
		// SPST.S slot, vN
		if err = need(2); err != nil {
			return in, false, err
		}
		if in.Imm, err = imm(args[0]); err == nil {
			in.Src[0], err = reg(args[1])
		}
	case OpSpillSL, OpSpillLL:
		// SPLD.S vN, slot
		if err = need(2); err != nil {
			return in, false, err
		}
		if in.Dst, err = reg(args[0]); err == nil {
			in.Imm, err = imm(args[1])
		}
	case OpBra:
		if err = need(1); err != nil {
			return in, false, err
		}
		in.Label = strings.TrimSpace(args[0])
	case OpCbr:
		if err = need(2); err != nil {
			return in, false, err
		}
		if in.Src[0], err = reg(args[0]); err == nil {
			in.Label = strings.TrimSpace(args[1])
		}
	case OpCall:
		if len(args) < 2 || len(args) > 5 {
			return in, false, &ParseError{line, "CALL expects dst, fname[, args...]"}
		}
		if in.Dst, err = reg(args[0]); err != nil {
			return in, false, err
		}
		in.Label = strings.TrimSpace(args[1])
		in.Src = [3]Reg{RegNone, RegNone, RegNone}
		for i := 2; i < len(args); i++ {
			if in.Src[i-2], err = reg(args[i]); err != nil {
				return in, false, err
			}
		}
		return in, true, nil
	case OpRet:
		in.Src = [3]Reg{RegNone, RegNone, RegNone}
		if len(args) == 1 {
			in.Src[0], err = reg(args[0])
		} else if len(args) != 0 {
			err = &ParseError{line, "RET expects at most one operand"}
		}
	case OpBar, OpExit:
		err = need(0)
	default:
		err = &ParseError{line, fmt.Sprintf("unhandled opcode %q", mnem)}
	}
	if err != nil {
		return in, false, err
	}
	if in.Width == 1 {
		in.Width = 0 // canonical word width
	}
	return in, false, nil
}

func splitOperands(s string) []string {
	s = strings.TrimSpace(s)
	if s == "" {
		return nil
	}
	parts := strings.Split(s, ",")
	// Re-join pieces split inside brackets: "[v1+4]" has no comma, but be safe.
	out := make([]string, 0, len(parts))
	depth := 0
	curStart := -1
	for i, p := range parts {
		if curStart < 0 {
			curStart = i
		}
		depth += strings.Count(p, "[") - strings.Count(p, "]")
		if depth == 0 {
			out = append(out, strings.TrimSpace(strings.Join(parts[curStart:i+1], ",")))
			curStart = -1
		}
	}
	if curStart >= 0 {
		out = append(out, strings.TrimSpace(strings.Join(parts[curStart:], ",")))
	}
	return out
}

func opByName(base, full string) (Op, bool) {
	switch full {
	case "SPST.S":
		return OpSpillSS, true
	case "SPLD.S":
		return OpSpillSL, true
	case "SPST.L":
		return OpSpillLS, true
	case "SPLD.L":
		return OpSpillLL, true
	}
	switch base {
	case "IADD":
		return OpIAdd, true
	case "ISUB":
		return OpISub, true
	case "IMUL":
		return OpIMul, true
	case "IMAD":
		return OpIMad, true
	case "IMIN":
		return OpIMin, true
	case "IMAX":
		return OpIMax, true
	case "AND":
		return OpAnd, true
	case "OR":
		return OpOr, true
	case "XOR":
		return OpXor, true
	case "SHL":
		return OpShl, true
	case "SHR":
		return OpShr, true
	case "ISET":
		return OpISet, true
	case "FADD":
		return OpFAdd, true
	case "FSUB":
		return OpFSub, true
	case "FMUL":
		return OpFMul, true
	case "FFMA":
		return OpFFma, true
	case "FMIN":
		return OpFMin, true
	case "FMAX":
		return OpFMax, true
	case "FSET":
		return OpFSet, true
	case "F2I":
		return OpF2I, true
	case "I2F":
		return OpI2F, true
	case "MOV":
		return OpMov, true
	case "MOVI":
		return OpMovI, true
	case "RDSP":
		return OpRdSp, true
	case "LDG":
		return OpLdG, true
	case "STG":
		return OpStG, true
	case "LDS":
		return OpLdS, true
	case "STS":
		return OpStS, true
	case "BRA":
		return OpBra, true
	case "CBR":
		return OpCbr, true
	case "CALL":
		return OpCall, true
	case "RET":
		return OpRet, true
	case "BAR":
		return OpBar, true
	case "EXIT":
		return OpExit, true
	}
	return OpInvalid, false
}

func cmpByName(s string) Cmp {
	switch s {
	case "LT":
		return CmpLT
	case "LE":
		return CmpLE
	case "EQ":
		return CmpEQ
	case "NE":
		return CmpNE
	case "GE":
		return CmpGE
	case "GT":
		return CmpGT
	}
	return CmpNone
}

func spByName(s string) Sp {
	switch s {
	case "WARPID":
		return SpWarpID
	case "BLOCKID":
		return SpBlockID
	case "WARPINBLK":
		return SpWarpInBlk
	case "NUMWARPS":
		return SpNumWarps
	case "WARPSPERBLK":
		return SpWarpsPerBlk
	case "SMID":
		return SpSMID
	case "LANEID":
		return SpLaneID
	}
	return SpNone
}

// Format disassembles a Program back to OASM text. Branch targets are
// rendered as generated labels (L<idx>), so Parse(Format(p)) yields an
// equivalent program.
func Format(p *Program) string {
	var b strings.Builder
	fmt.Fprintf(&b, ".kernel %s\n", p.Name)
	if p.SharedBytes > 0 {
		fmt.Fprintf(&b, ".shared %d\n", p.SharedBytes)
	}
	fmt.Fprintf(&b, ".blockdim %d\n", p.BlockDim)
	for _, f := range p.Funcs {
		fmt.Fprintf(&b, ".func %s", f.Name)
		if f.NumArgs > 0 {
			fmt.Fprintf(&b, " args %d", f.NumArgs)
		}
		if f.HasRet {
			b.WriteString(" ret")
		}
		b.WriteByte('\n')
		targets := map[int]bool{}
		for i := range f.Instrs {
			if f.Instrs[i].IsBranch() {
				targets[int(f.Instrs[i].Tgt)] = true
			}
		}
		for i := range f.Instrs {
			if targets[i] {
				fmt.Fprintf(&b, "L%d:\n", i)
			}
			b.WriteString("  ")
			b.WriteString(FormatInstr(p, &f.Instrs[i]))
			b.WriteByte('\n')
		}
	}
	return b.String()
}

// FormatInstr renders a single instruction as OASM text.
func FormatInstr(p *Program, in *Instr) string {
	r := func(x Reg) string {
		if x == RegNone {
			return "_"
		}
		return "v" + strconv.Itoa(int(x))
	}
	mnem := in.Op.String()
	if in.Width > 1 {
		mnem += "." + strconv.Itoa(in.W()*32)
	}
	switch in.Op {
	case OpISet, OpFSet:
		mnem = in.Op.String() + "." + in.Cmp.String()
	}
	adr := func(base Reg) string {
		if in.Imm != 0 {
			return fmt.Sprintf("[%s+%d]", r(base), in.Imm)
		}
		return fmt.Sprintf("[%s]", r(base))
	}
	switch in.Op {
	case OpIMad, OpFFma:
		return fmt.Sprintf("%s %s, %s, %s, %s", mnem, r(in.Dst), r(in.Src[0]), r(in.Src[1]), r(in.Src[2]))
	case OpMov, OpF2I, OpI2F:
		return fmt.Sprintf("%s %s, %s", mnem, r(in.Dst), r(in.Src[0]))
	case OpMovI:
		return fmt.Sprintf("%s %s, %d", mnem, r(in.Dst), in.Imm)
	case OpRdSp:
		return fmt.Sprintf("%s %s, %s", mnem, r(in.Dst), in.Sp)
	case OpLdG, OpLdS:
		return fmt.Sprintf("%s %s, %s", mnem, r(in.Dst), adr(in.Src[0]))
	case OpStG, OpStS:
		return fmt.Sprintf("%s %s, %s", mnem, adr(in.Src[0]), r(in.Src[1]))
	case OpSpillSS, OpSpillLS:
		return fmt.Sprintf("%s %d, %s", mnem, in.Imm, r(in.Src[0]))
	case OpSpillSL, OpSpillLL:
		return fmt.Sprintf("%s %s, %d", mnem, r(in.Dst), in.Imm)
	case OpBra:
		return fmt.Sprintf("%s L%d", mnem, in.Tgt)
	case OpCbr:
		return fmt.Sprintf("%s %s, L%d", mnem, r(in.Src[0]), in.Tgt)
	case OpCall:
		callee := "?"
		if p != nil && int(in.Tgt) < len(p.Funcs) {
			callee = p.Funcs[in.Tgt].Name
		} else if in.Label != "" {
			callee = in.Label
		}
		s := fmt.Sprintf("%s %s, %s", mnem, r(in.Dst), callee)
		for i := 0; i < in.NumSrcs(); i++ {
			s += ", " + r(in.Src[i])
		}
		return s
	case OpRet:
		if in.Src[0] != RegNone {
			return fmt.Sprintf("%s %s", mnem, r(in.Src[0]))
		}
		return mnem
	case OpBar, OpExit:
		return mnem
	default:
		return fmt.Sprintf("%s %s, %s, %s", mnem, r(in.Dst), r(in.Src[0]), r(in.Src[1]))
	}
}
