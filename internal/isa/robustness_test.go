package isa

import (
	"math/rand"
	"strings"
	"testing"
)

// TestParseNeverPanics mutates valid source randomly; the parser must
// return errors, never panic, and accepted outputs must re-format.
func TestParseNeverPanics(t *testing.T) {
	r := rand.New(rand.NewSource(424242))
	base := sampleSrc
	chars := []byte("vb0123456789[]+,._ \nLDGSTEXIT")
	for iter := 0; iter < 2000; iter++ {
		b := []byte(base)
		for k := 0; k < 1+r.Intn(6); k++ {
			switch r.Intn(3) {
			case 0: // mutate a byte
				b[r.Intn(len(b))] = chars[r.Intn(len(chars))]
			case 1: // delete a span
				i := r.Intn(len(b))
				j := i + r.Intn(10)
				if j > len(b) {
					j = len(b)
				}
				b = append(b[:i], b[j:]...)
			case 2: // duplicate a span
				i := r.Intn(len(b))
				j := i + r.Intn(20)
				if j > len(b) {
					j = len(b)
				}
				b = append(b[:j], append(append([]byte{}, b[i:j]...), b[j:]...)...)
			}
			if len(b) == 0 {
				b = []byte(".")
			}
		}
		func() {
			defer func() {
				if rec := recover(); rec != nil {
					t.Fatalf("parser panicked on mutated input: %v\n%s", rec, b)
				}
			}()
			p, err := Parse(string(b))
			if err == nil {
				// Whatever parses must also format and re-parse.
				if _, err2 := Parse(Format(p)); err2 != nil {
					t.Fatalf("accepted program fails reparse: %v", err2)
				}
			}
		}()
	}
}

// TestDecodeNeverPanics feeds mutated binaries to the decoder.
func TestDecodeNeverPanics(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	valid := Encode(MustParse(sampleSrc))
	for iter := 0; iter < 2000; iter++ {
		b := append([]byte(nil), valid...)
		for k := 0; k < 1+r.Intn(8); k++ {
			b[r.Intn(len(b))] = byte(r.Intn(256))
		}
		if r.Intn(4) == 0 {
			b = b[:r.Intn(len(b))]
		}
		func() {
			defer func() {
				if rec := recover(); rec != nil {
					t.Fatalf("decoder panicked: %v", rec)
				}
			}()
			p, err := Decode(b)
			if err == nil && p != nil {
				// A structurally valid decode may still fail validation;
				// that must also not panic.
				_ = Validate(p)
			}
		}()
	}
}

// TestFormatLongPrograms exercises the formatter on a generated program
// with many labels and functions.
func TestFormatLongPrograms(t *testing.T) {
	var b strings.Builder
	b.WriteString(".kernel big\n.blockdim 64\n.func main\n")
	for i := 0; i < 200; i++ {
		if i%10 == 0 {
			b.WriteString("lbl")
			b.WriteString(strings.Repeat("x", 1+i%3))
			b.WriteString(itostr(i))
			b.WriteString(":\n")
		}
		b.WriteString("  IADD v1, v2, v3\n")
	}
	b.WriteString("  EXIT\n")
	p, err := Parse(b.String())
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	text := Format(p)
	if _, err := Parse(text); err != nil {
		t.Fatalf("reparse: %v", err)
	}
}

func itostr(n int) string {
	if n == 0 {
		return "0"
	}
	var digits []byte
	for n > 0 {
		digits = append([]byte{byte('0' + n%10)}, digits...)
		n /= 10
	}
	return string(digits)
}
