package verify

import (
	"fmt"
	"reflect"

	"repro/internal/interp"
	"repro/internal/sim"
)

// CrossBackend is the simulator's backend-equivalence oracle: it runs the
// same launch through the compiled and the interpreted execution backends
// and diffs the resulting Stats field by field. The compiled backend is an
// aggressive reimplementation (fused closures, warp-batched ALU), but it
// must be observationally invisible — every counter, both checksums, and
// the energy totals have to come out bit-identical, and a launch that
// faults must fault with the same error text on both sides.
//
// The issue trace is excluded from the comparison: it is a debugging
// artifact whose capture is orthogonal to the execution backend, and
// traced runs are compared by the rest of the Stats anyway.
func CrossBackend(cfg sim.Config, lc *interp.Launch) []Violation {
	ccfg := cfg
	ccfg.Backend = sim.BackendCompiled
	icfg := cfg
	icfg.Backend = sim.BackendInterp

	cst, cerr := sim.Simulate(ccfg, lc)
	ist, ierr := sim.Simulate(icfg, lc)

	if (cerr != nil) != (ierr != nil) {
		return []Violation{{Invariant: "cross-backend",
			Detail: fmt.Sprintf("fault mismatch: compiled err=%v, interp err=%v", cerr, ierr)}}
	}
	if cerr != nil {
		if cerr.Error() != ierr.Error() {
			return []Violation{{Invariant: "cross-backend",
				Detail: fmt.Sprintf("fault text mismatch: compiled %q, interp %q", cerr, ierr)}}
		}
		return nil // both backends faulted identically
	}
	return diffStats(cst, ist)
}

// diffStats compares two Stats structurally (traces excluded) and reports
// the first differing field by name, so a regression points straight at
// the counter that diverged.
func diffStats(compiled, interpreted *sim.Stats) []Violation {
	c, i := *compiled, *interpreted
	c.Trace, i.Trace = nil, nil
	if c == i {
		return nil
	}
	cv := reflect.ValueOf(c)
	iv := reflect.ValueOf(i)
	t := cv.Type()
	for f := 0; f < t.NumField(); f++ {
		a, b := cv.Field(f).Interface(), iv.Field(f).Interface()
		if !reflect.DeepEqual(a, b) {
			return []Violation{{Invariant: "cross-backend",
				Detail: fmt.Sprintf("Stats.%s: compiled %v, interp %v", t.Field(f).Name, a, b)}}
		}
	}
	return []Violation{{Invariant: "cross-backend", Detail: "stats differ (unlocated field)"}}
}
