package verify_test

import (
	"testing"

	"repro/internal/device"
	"repro/internal/interp"
	"repro/internal/isa"
	"repro/internal/verify"
)

func gtx() (*device.Device, device.CacheConfig) {
	return device.GTX680(), device.SmallCache
}

// allocated parses a program and marks every function as trivially
// allocated (identity coloring: frame = virtual registers), which is valid
// input for the verifier's post-allocation checks.
func allocated(t *testing.T, src string) *isa.Program {
	t.Helper()
	p := isa.MustParse(src)
	for _, f := range p.Funcs {
		f.Allocated = true
		f.FrameSlots = f.NumVRegs
	}
	if err := isa.Validate(p); err != nil {
		t.Fatalf("test program invalid: %v", err)
	}
	return p
}

// realized derives a Realized whose advertised resources match the
// program's actual layout, so tests can perturb exactly one claim.
func realized(t *testing.T, p *isa.Program, target int) verify.Realized {
	t.Helper()
	layout, err := interp.NewLayout(p)
	if err != nil {
		t.Fatalf("NewLayout: %v", err)
	}
	regs := layout.RegHighWater
	if regs < 1 {
		regs = 1
	}
	return verify.Realized{
		Prog:           p,
		TargetWarps:    target,
		RegsPerThread:  regs,
		SharedPerBlock: p.SharedBytes + layout.SharedSpillSlots*4*p.BlockDim,
		LocalSlots:     layout.LocalSpillSlots,
	}
}

func hasInvariant(vs []verify.Violation, inv string) bool {
	for _, v := range vs {
		if v.Invariant == inv {
			return true
		}
	}
	return false
}

const cleanSrc = `
.kernel clean
.blockdim 32
.func main
  RDSP v0, WARPID
  MOVI v1, 5
  IADD v2, v0, v1
  STG [v2], v1
  EXIT
`

func TestCheckCleanProgram(t *testing.T) {
	d, cc := gtx()
	p := allocated(t, cleanSrc)
	if vs := verify.Check(d, cc, realized(t, p, 8)); len(vs) != 0 {
		t.Errorf("clean program: %v", vs)
	}
}

func TestCheckNilAndStructure(t *testing.T) {
	d, cc := gtx()
	if vs := verify.Check(d, cc, verify.Realized{}); !hasInvariant(vs, "structure") {
		t.Errorf("nil program: %v", vs)
	}
	p := allocated(t, cleanSrc)
	p.Funcs[0].Instrs[2].Dst = 99 // operand outside the frame
	if vs := verify.Check(d, cc, realized(t, allocatedCopy(t, p), 8)); !hasInvariant(vs, "structure") {
		t.Errorf("broken operand: %v", vs)
	}
}

// allocatedCopy revalidates nothing — it hands the (possibly damaged)
// program straight to the verifier, which must catch the damage itself.
func allocatedCopy(t *testing.T, p *isa.Program) *isa.Program {
	t.Helper()
	return p
}

func TestCheckUnallocated(t *testing.T) {
	d, cc := gtx()
	p := isa.MustParse(cleanSrc) // Allocated stays false
	vs := verify.Check(d, cc, verify.Realized{Prog: p, RegsPerThread: 3})
	if !hasInvariant(vs, "allocated") {
		t.Errorf("unallocated program: %v", vs)
	}
}

func TestCheckWideAlignment(t *testing.T) {
	d, cc := gtx()
	p := allocated(t, `
.kernel wide
.blockdim 32
.func main
  RDSP v0, WARPID
  MOV.64 v1, v3
  STG.64 [v0], v1
  EXIT
`)
	vs := verify.Check(d, cc, realized(t, p, 8))
	if !hasInvariant(vs, "wide-alignment") {
		t.Errorf("odd 64-bit base: %v", vs)
	}
}

func TestCheckSpillOverlap(t *testing.T) {
	d, cc := gtx()
	p := allocated(t, `
.kernel sp
.blockdim 32
.func main
  MOVI v0, 1
  SPST.S 0, v0
  SPST.S 1, v0
  EXIT
`)
	f := p.Funcs[0]
	// Widen the first spill to [0,2): it now partially overlaps [1,2).
	f.Instrs[1].Width = 2
	f.NumVRegs, f.FrameSlots, f.SpillShared = 2, 2, 3
	if err := isa.Validate(p); err != nil {
		t.Fatalf("test program invalid: %v", err)
	}
	vs := verify.Check(d, cc, realized(t, p, 8))
	if !hasInvariant(vs, "spill-slots") {
		t.Errorf("partially overlapping spill ranges: %v", vs)
	}
}

const callSrc = `
.kernel cb
.blockdim 32
.func main
  MOVI v1, 5
  MOVI v2, 7
  CALL v0, helper, v1
  IADD v3, v2, v0
  STG [v3], v2
  EXIT
.func helper args 1 ret
  IADD v1, v0, v0
  RET v1
`

func TestCheckCallBounds(t *testing.T) {
	d, cc := gtx()
	p := allocated(t, callSrc)
	p.Funcs[0].CallBounds = []int{4} // no compression: callee above the frame
	if err := isa.Validate(p); err != nil {
		t.Fatalf("test program invalid: %v", err)
	}
	if vs := verify.Check(d, cc, realized(t, p, 8)); len(vs) != 0 {
		t.Errorf("uncompressed call: %v", vs)
	}
	// Compressing to height 2 puts the callee frame on top of v2 and v3;
	// v2 is live across the call, so the binary is broken.
	p.Funcs[0].CallBounds = []int{2}
	vs := verify.Check(d, cc, realized(t, p, 8))
	if !hasInvariant(vs, "call-bounds") {
		t.Errorf("live register under callee frame: %v", vs)
	}
}

func TestCheckLayoutMismatch(t *testing.T) {
	d, cc := gtx()
	p := allocated(t, cleanSrc)
	r := realized(t, p, 8)
	r.RegsPerThread++
	if vs := verify.Check(d, cc, r); !hasInvariant(vs, "layout") {
		t.Errorf("wrong advertised registers: %v", vs)
	}
	r = realized(t, p, 8)
	r.SharedPerBlock += 4
	if vs := verify.Check(d, cc, r); !hasInvariant(vs, "layout") {
		t.Errorf("wrong advertised shared: %v", vs)
	}
	r = realized(t, p, 8)
	r.LocalSlots++
	if vs := verify.Check(d, cc, r); !hasInvariant(vs, "layout") {
		t.Errorf("wrong advertised local slots: %v", vs)
	}
}

func TestCheckRegBudget(t *testing.T) {
	d, cc := gtx()
	p := allocated(t, `
.kernel fat
.blockdim 32
.func main
  MOVI v99, 1
  STG [v99], v99
  EXIT
`)
	vs := verify.Check(d, cc, realized(t, p, 1))
	if !hasInvariant(vs, "reg-budget") {
		t.Errorf("100-register frame on a 63-register device: %v", vs)
	}
}

func TestCheckOccupancyTarget(t *testing.T) {
	d, cc := gtx()
	p := allocated(t, `
.kernel smem
.blockdim 32
.shared 8192
.func main
  RDSP v0, WARPID
  LDS v1, [v0]
  STG [v0], v1
  EXIT
`)
	// 8 KB/block caps resident blocks well below 64 single-warp blocks.
	vs := verify.Check(d, cc, realized(t, p, 64))
	if !hasInvariant(vs, "occupancy") {
		t.Errorf("unreachable occupancy target: %v", vs)
	}
}

func TestDifferentialIdentity(t *testing.T) {
	p := allocated(t, cleanSrc)
	if vs := verify.Differential(p, p, 0, 0); len(vs) != 0 {
		t.Errorf("program vs itself: %v", vs)
	}
}

func TestDifferentialCatchesTampering(t *testing.T) {
	orig := allocated(t, cleanSrc)
	tampered := orig.Clone()
	tampered.Funcs[0].Instrs[1].Imm = 6 // MOVI v1, 6 instead of 5
	vs := verify.Differential(orig, tampered, 0, 0)
	if !hasInvariant(vs, "differential") {
		t.Errorf("tampered constant not caught: %v", vs)
	}
}

func TestDifferentialCatchesTamperingSIMT(t *testing.T) {
	src := `
.kernel lanes
.blockdim 32
.func main
  RDSP v0, LANEID
  MOVI v1, 3
  IADD v2, v0, v1
  STG [v2], v2
  EXIT
`
	orig := allocated(t, src)
	tampered := orig.Clone()
	tampered.Funcs[0].Instrs[1].Imm = 4
	vs := verify.Differential(orig, tampered, 0, 0)
	if !hasInvariant(vs, "differential") {
		t.Errorf("tampered SIMT constant not caught: %v", vs)
	}
}

func TestDifferentialAbstains(t *testing.T) {
	loop := allocated(t, `
.kernel spin
.blockdim 32
.func main
L0:
  BRA L0
`)
	good := allocated(t, cleanSrc)
	// No reference: the original itself cannot finish.
	if vs := verify.Differential(loop, good, 0, 1000); vs != nil {
		t.Errorf("expected abstention, got %v", vs)
	}
	// Realized side hitting the step budget proves nothing either.
	if vs := verify.Differential(good, loop, 0, 1000); vs != nil {
		t.Errorf("expected abstention on realized step limit, got %v", vs)
	}
}
