package verify

import (
	"errors"
	"fmt"
	"strings"

	"repro/internal/interp"
	"repro/internal/isa"
)

// BlockOracle functionally executes the warps of a single thread block
// and checks the observed schedule for the two dynamic failure modes the
// static analyzer (internal/sa) proves absent: warps disagreeing on how
// many barriers they execute ("dyn-barrier-divergence"), and shared-
// memory accesses from different warps in the same barrier interval
// whose byte ranges overlap with at least one store ("dyn-shared-race").
// It is the dynamic half of the analyzer's differential tests: a nil
// result means the executed path exhibited neither defect — it says
// nothing about unexecuted paths. Spill traffic is ignored (spill slots
// are per-thread by construction).
//
// Lane-aware (LANEID) programs are checked for barrier divergence only:
// the SIMT executor itself faults when a diverged warp reaches a BAR.
// SIMT programs the executor cannot run are skipped with a nil result.
func BlockOracle(p *isa.Program, stepLimit int) ([]Violation, error) {
	if err := isa.Validate(p); err != nil {
		return nil, err
	}
	layout, err := interp.NewLayout(p)
	if err != nil {
		return nil, err
	}
	if layout.RegHighWater > interp.RegFileSize {
		return nil, fmt.Errorf("verify: program needs %d registers, file holds %d",
			layout.RegHighWater, interp.RegFileSize)
	}
	wpb := p.BlockDim / 32
	if wpb < 1 {
		wpb = 1
	}
	lc := &interp.Launch{Prog: p, GridWarps: wpb}
	sharedWords := (p.SharedBytes + 3) / 4
	var shared []uint32
	if sharedWords > 0 {
		shared = make([]uint32, sharedWords)
	}

	if p.UsesLaneID() {
		return simtBarrierOracle(p, lc, layout, wpb, shared, stepLimit)
	}

	// Instruction identity -> (function, pc) for reporting.
	pcOf := make(map[*isa.Instr][2]int)
	for fi, f := range p.Funcs {
		for i := range f.Instrs {
			pcOf[&f.Instrs[i]] = [2]int{fi, i}
		}
	}

	type access struct {
		warp, interval int
		lo, hi         uint32
		write          bool
		fn, pc         int
	}
	var accs []access
	bars := make([]int, wpb)
	for wi := 0; wi < wpb; wi++ {
		w := interp.NewWarp(lc, layout, wi, shared)
		for steps := 0; !w.Done(); steps++ {
			if steps >= stepLimit {
				return nil, fmt.Errorf("verify: warp %d: %w", wi, interp.ErrStepLimit)
			}
			ev, err := w.Step()
			if err != nil {
				return nil, fmt.Errorf("verify: warp %d: %w", wi, err)
			}
			switch {
			case ev.Kind == interp.KindBarrier:
				bars[wi]++
			case ev.Space == interp.SpaceShared && ev.Instr != nil && !ev.Instr.IsSpill() && ev.Bytes > 0:
				loc := pcOf[ev.Instr]
				accs = append(accs, access{
					warp: wi, interval: bars[wi],
					lo: ev.Addr, hi: ev.Addr + uint32(ev.Bytes) - 1,
					write: ev.Kind == interp.KindStore,
					fn:    loc[0], pc: loc[1],
				})
			}
		}
	}

	var out []Violation
	for wi := 1; wi < wpb; wi++ {
		if bars[wi] != bars[0] {
			out = append(out, Violation{
				Invariant: "dyn-barrier-divergence",
				Func:      p.Entry().Name,
				Detail: fmt.Sprintf("warp 0 executed %d barriers, warp %d executed %d",
					bars[0], wi, bars[wi]),
			})
			break
		}
	}
	const maxRaces = 20
	races := 0
	for i := 0; i < len(accs) && races < maxRaces; i++ {
		for j := i + 1; j < len(accs) && races < maxRaces; j++ {
			a, b := accs[i], accs[j]
			if a.warp == b.warp || a.interval != b.interval || (!a.write && !b.write) {
				continue
			}
			if a.lo <= b.hi && b.lo <= a.hi {
				races++
				out = append(out, Violation{
					Invariant: "dyn-shared-race",
					Func:      p.Funcs[a.fn].Name,
					Detail: fmt.Sprintf(
						"warp %d %s[%d] bytes [%d,%d] overlaps warp %d %s[%d] bytes [%d,%d] in barrier interval %d",
						a.warp, p.Funcs[a.fn].Name, a.pc, a.lo, a.hi,
						b.warp, p.Funcs[b.fn].Name, b.pc, b.lo, b.hi, a.interval),
				})
			}
		}
	}
	return out, nil
}

// simtBarrierOracle runs lane-aware programs through the SIMT executor,
// which reports barrier divergence as a step error.
func simtBarrierOracle(p *isa.Program, lc *interp.Launch, layout *interp.Layout, wpb int, shared []uint32, stepLimit int) ([]Violation, error) {
	for wi := 0; wi < wpb; wi++ {
		w, err := interp.NewSIMTWarp(lc, layout, wi, shared)
		if err != nil {
			if errors.Is(err, interp.ErrSIMTUnsupported) {
				return nil, nil // cannot execute: abstain
			}
			return nil, err
		}
		for steps := 0; !w.Done(); steps++ {
			if steps >= stepLimit {
				return nil, fmt.Errorf("verify: warp %d: %w", wi, interp.ErrStepLimit)
			}
			if _, err := w.Step(); err != nil {
				if strings.Contains(err.Error(), "diverged warp") {
					return []Violation{{
						Invariant: "dyn-barrier-divergence",
						Func:      p.Entry().Name,
						Detail:    fmt.Sprintf("warp %d: %v", wi, err),
					}}, nil
				}
				return nil, fmt.Errorf("verify: warp %d: %w", wi, err)
			}
		}
	}
	return nil, nil
}
