// Package verify is the post-realization allocation verifier: an
// independent checker for the invariants behind the paper's
// semantics-preservation claim (Theorem 1). Given a realized version it
// re-derives the resource layout from the binary alone and checks that
//
//   - every operand stays inside its function frame and wide (64/96/128-bit)
//     variables sit aligned and contiguous (register-budget compliance);
//   - spill-slot ranges are identical-or-disjoint and the shared spill
//     bytes are counted in the occupancy formula input (spill disjointness);
//   - the compressible stack is valid: per-call bounds cover every call
//     site, and no caller register above a call's compressed height Bk is
//     live across that call (caller/callee frame disjointness);
//   - the advertised resources (registers/thread, shared/block, local
//     slots) match the recomputed layout, and the occupancy they admit
//     reaches the version's target level.
//
// The checks are deliberately independent of the allocator's own
// bookkeeping: everything is recomputed from the instruction stream, so a
// silent misallocation cannot vouch for itself. What cannot be decided
// statically (whether a reused spill slot ever serves two live values) is
// covered dynamically by the differential oracle in this package.
package verify

import (
	"fmt"
	"sort"

	"repro/internal/device"
	"repro/internal/interp"
	"repro/internal/ir"
	"repro/internal/isa"
	"repro/internal/occupancy"
)

// Violation is one broken invariant, structured for obs reporting.
type Violation struct {
	// Invariant names the broken rule: "structure", "allocated",
	// "wide-alignment", "layout", "reg-budget", "occupancy", "spill-slots",
	// "call-bounds", or "differential".
	Invariant string
	// Func is the offending function, when the violation is per-function.
	Func string
	// Detail is a human-readable description of the failure.
	Detail string
}

func (v Violation) String() string {
	if v.Func != "" {
		return fmt.Sprintf("%s: %s: %s", v.Invariant, v.Func, v.Detail)
	}
	return fmt.Sprintf("%s: %s", v.Invariant, v.Detail)
}

// Realized is the candidate under verification: the allocated program plus
// the resource claims the tuner will trust.
type Realized struct {
	Prog           *isa.Program
	TargetWarps    int
	RegsPerThread  int
	SharedPerBlock int
	LocalSlots     int
}

// Check runs every static invariant against a realized version and returns
// the violations found (nil when the version is clean).
func Check(d *device.Device, cc device.CacheConfig, r Realized) []Violation {
	var vs []Violation
	if r.Prog == nil {
		return []Violation{{Invariant: "structure", Detail: "no program"}}
	}
	if err := isa.Validate(r.Prog); err != nil {
		// Structural damage makes the remaining checks unsafe to run.
		return []Violation{{Invariant: "structure", Detail: err.Error()}}
	}
	for _, f := range r.Prog.Funcs {
		if !f.Allocated {
			vs = append(vs, Violation{"allocated", f.Name, "function not register-allocated"})
		}
	}
	if len(vs) > 0 {
		return vs
	}
	for _, f := range r.Prog.Funcs {
		vs = append(vs, checkWideAlignment(f)...)
		vs = append(vs, checkSpillRanges(f)...)
		vs = append(vs, checkCallBounds(f)...)
	}
	vs = append(vs, checkLayout(d, cc, r)...)
	return vs
}

// checkWideAlignment enforces the hardware register-pairing rule: a wide
// operand's frame-relative base must be aligned to its bank granularity
// (AlignFor), and Validate has already guaranteed contiguity (base+width
// inside the frame).
func checkWideAlignment(f *isa.Function) []Violation {
	var vs []Violation
	check := func(i int, r isa.Reg, w int, what string) {
		if w < 2 {
			return
		}
		if a := isa.AlignFor(w); int(r)%a != 0 {
			vs = append(vs, Violation{"wide-alignment", f.Name,
				fmt.Sprintf("instr %d: %s v%d width %d not aligned to %d", i, what, r, w, a)})
		}
	}
	for i := range f.Instrs {
		in := &f.Instrs[i]
		if in.HasDst() {
			check(i, in.Dst, in.W(), "destination")
		}
		for s := 0; s < in.NumSrcs(); s++ {
			check(i, in.Src[s], in.SrcWidth(s), "source")
		}
	}
	return vs
}

// checkSpillRanges enforces slot-range consistency per memory space: the
// allocator gives each spilled variable its own contiguous run of slots and
// never reuses them, so any two accessed ranges must be identical or
// disjoint. A partial overlap means two differently-shaped values were
// assigned overlapping storage.
func checkSpillRanges(f *isa.Function) []Violation {
	type rng struct{ start, width int }
	ranges := map[string]map[rng]bool{"shared": {}, "local": {}}
	for i := range f.Instrs {
		in := &f.Instrs[i]
		var space string
		switch in.Op {
		case isa.OpSpillSS, isa.OpSpillSL:
			space = "shared"
		case isa.OpSpillLS, isa.OpSpillLL:
			space = "local"
		default:
			continue
		}
		ranges[space][rng{int(in.Imm), in.W()}] = true
	}
	var vs []Violation
	for space, set := range ranges {
		rs := make([]rng, 0, len(set))
		for r := range set {
			rs = append(rs, r)
		}
		sort.Slice(rs, func(i, j int) bool {
			if rs[i].start != rs[j].start {
				return rs[i].start < rs[j].start
			}
			return rs[i].width < rs[j].width
		})
		for i := 1; i < len(rs); i++ {
			a, b := rs[i-1], rs[i]
			if b.start < a.start+a.width && a != b {
				vs = append(vs, Violation{"spill-slots", f.Name,
					fmt.Sprintf("%s spill ranges [%d,%d) and [%d,%d) partially overlap",
						space, a.start, a.start+a.width, b.start, b.start+b.width)})
			}
		}
	}
	return vs
}

// checkLayout recomputes the program's resource layout from scratch and
// compares it with the version's advertised numbers, then feeds the
// advertised numbers through the occupancy calculator to confirm the
// target level is actually admitted (register-budget compliance in the
// paper's occupancy-formula sense, with shared spill bytes included).
func checkLayout(d *device.Device, cc device.CacheConfig, r Realized) []Violation {
	var vs []Violation
	layout, err := interp.NewLayout(r.Prog)
	if err != nil {
		return []Violation{{Invariant: "layout", Detail: err.Error()}}
	}
	regs := layout.RegHighWater
	if regs < 1 {
		regs = 1
	}
	if r.RegsPerThread != regs {
		vs = append(vs, Violation{"layout", "",
			fmt.Sprintf("advertised %d regs/thread, layout needs %d", r.RegsPerThread, regs)})
	}
	shared := r.Prog.SharedBytes + layout.SharedSpillSlots*4*r.Prog.BlockDim
	if r.SharedPerBlock != shared {
		vs = append(vs, Violation{"layout", "",
			fmt.Sprintf("advertised %d B shared/block, layout needs %d (user %d + %d spill slots)",
				r.SharedPerBlock, shared, r.Prog.SharedBytes, layout.SharedSpillSlots)})
	}
	if r.LocalSlots != layout.LocalSpillSlots {
		vs = append(vs, Violation{"layout", "",
			fmt.Sprintf("advertised %d local slots, layout needs %d", r.LocalSlots, layout.LocalSpillSlots)})
	}
	if regs > d.MaxRegsPerThread {
		vs = append(vs, Violation{"reg-budget", "",
			fmt.Sprintf("%d regs/thread exceeds hardware max %d", regs, d.MaxRegsPerThread)})
		return vs
	}
	if r.TargetWarps > 0 {
		occ, err := occupancy.Calc(d, cc, occupancy.Config{
			RegsPerThread:  regs,
			SharedPerBlock: shared,
			BlockDim:       r.Prog.BlockDim,
		})
		if err != nil {
			vs = append(vs, Violation{"occupancy", "", err.Error()})
		} else if occ.ActiveWarps < r.TargetWarps {
			vs = append(vs, Violation{"occupancy", "",
				fmt.Sprintf("resources admit %d warps/SM, target is %d (limited by %v)",
					occ.ActiveWarps, r.TargetWarps, occ.Limiter)})
		}
	}
	return vs
}

// checkCallBounds verifies compressible-stack validity: at every call site
// with compressed height Bk, no caller register at or above Bk may be live
// across the call — the callee frame starts at Bk, so a live value there
// would be clobbered. Liveness is recomputed here at physical-register
// granularity, independent of the allocator's variable-level analysis.
func checkCallBounds(f *isa.Function) []Violation {
	if f.CallBounds == nil || f.FrameSlots <= 0 {
		return nil
	}
	calls := 0
	for i := range f.Instrs {
		if f.Instrs[i].Op == isa.OpCall {
			calls++
		}
	}
	if calls == 0 || len(f.CallBounds) != calls {
		return nil // length mismatch already reported by Validate
	}

	n := f.FrameSlots
	cfg := ir.BuildCFG(f)
	nb := len(cfg.Blocks)

	dstUnits := func(in *isa.Instr, fn func(u int)) {
		if !in.HasDst() {
			return
		}
		for k := 0; k < in.W(); k++ {
			fn(int(in.Dst) + k)
		}
	}
	srcUnits := func(in *isa.Instr, fn func(u int)) {
		for s := 0; s < in.NumSrcs(); s++ {
			for k := 0; k < in.SrcWidth(s); k++ {
				fn(int(in.Src[s]) + k)
			}
		}
	}

	// Block-level backward liveness over physical register units.
	use := make([]ir.BitSet, nb)
	def := make([]ir.BitSet, nb)
	liveIn := make([]ir.BitSet, nb)
	liveOut := make([]ir.BitSet, nb)
	for b := 0; b < nb; b++ {
		use[b], def[b] = ir.NewBitSet(n), ir.NewBitSet(n)
		liveIn[b], liveOut[b] = ir.NewBitSet(n), ir.NewBitSet(n)
		for i := cfg.Blocks[b].Start; i < cfg.Blocks[b].End; i++ {
			in := &f.Instrs[i]
			srcUnits(in, func(u int) {
				if !def[b].Has(u) {
					use[b].Set(u)
				}
			})
			dstUnits(in, func(u int) { def[b].Set(u) })
		}
	}
	for changed := true; changed; {
		changed = false
		for b := nb - 1; b >= 0; b-- {
			for _, s := range cfg.Blocks[b].Succs {
				if liveOut[b].OrWith(liveIn[s]) {
					changed = true
				}
			}
			newIn := liveOut[b].Clone()
			newIn.AndNotWith(def[b])
			newIn.OrWith(use[b])
			if liveIn[b].OrWith(newIn) {
				changed = true
			}
		}
	}

	// Static call index per instruction, in instruction order.
	callIdx := make(map[int]int, calls)
	k := 0
	for i := range f.Instrs {
		if f.Instrs[i].Op == isa.OpCall {
			callIdx[i] = k
			k++
		}
	}

	var vs []Violation
	live := ir.NewBitSet(n)
	for b := 0; b < nb; b++ {
		live.CopyFrom(liveOut[b])
		for i := cfg.Blocks[b].End - 1; i >= cfg.Blocks[b].Start; i-- {
			in := &f.Instrs[i]
			if in.Op == isa.OpCall {
				bk := f.CallBounds[callIdx[i]]
				// Units live after the call, excluding the call's own result
				// span (the callee writes it on return), must sit below Bk.
				bad := -1
				live.ForEach(func(u int) {
					if u < bk || bad >= 0 {
						return
					}
					if in.Dst != isa.RegNone && u >= int(in.Dst) && u < int(in.Dst)+in.W() {
						return
					}
					bad = u
				})
				if bad >= 0 {
					vs = append(vs, Violation{"call-bounds", f.Name,
						fmt.Sprintf("instr %d: register v%d live across call with compressed height %d",
							i, bad, bk)})
				}
			}
			dstUnits(in, func(u int) { live.Clear(u) })
			srcUnits(in, func(u int) { live.Set(u) })
		}
	}
	return vs
}
