package verify

import (
	"errors"
	"fmt"

	"repro/internal/interp"
	"repro/internal/isa"
)

// defaultOracleSteps bounds the dynamic instructions per warp during a
// differential run; realized binaries execute extra spill and move
// instructions, so the limit is per-side, not shared. The example kernels
// finish in a few thousand steps per warp; the budget mostly caps how long
// the oracle spends on adversarial (fuzz-generated) loops.
const defaultOracleSteps = 200_000

// Differential is the execution oracle: it runs the original and the
// realized program through the functional interpreter on the same launch
// and diffs their global-store streams word for word. Register allocation,
// spilling, and the compressible stack are pure implementation detail —
// the observable output (every store's address and value, in order) must
// be bit-identical.
//
// When the original program fails to execute (step limit, resource
// overflow) no reference exists and the oracle abstains, returning nil;
// a realized program that fails where the original succeeded is a
// violation. Lane-dependent (SIMT) programs are compared by store count
// and the order-sensitive store checksum, which covers the same
// (address, value) word stream.
func Differential(orig, realized *isa.Program, gridWarps, stepLimit int) []Violation {
	if orig == nil || realized == nil {
		return []Violation{{Invariant: "differential", Detail: "missing program"}}
	}
	if stepLimit <= 0 {
		stepLimit = defaultOracleSteps
	}
	if gridWarps <= 0 {
		gridWarps = 2 * orig.BlockDim / 32
		if gridWarps < 2 {
			gridWarps = 2 // at least two blocks' worth of sub-warp blocks
		}
	}

	if orig.UsesLaneID() || realized.UsesLaneID() {
		return diffChecksum(orig, realized, gridWarps, stepLimit)
	}

	want, err := storeStreams(orig, gridWarps, stepLimit)
	if err != nil {
		return nil // no reference: the input program itself cannot run
	}
	got, err := storeStreams(realized, gridWarps, stepLimit)
	if err != nil {
		if errors.Is(err, interp.ErrStepLimit) {
			// Realization adds spill/move instructions but never changes
			// control flow; a budget the original just fit under proves
			// nothing about the realized binary. Abstain.
			return nil
		}
		return []Violation{{Invariant: "differential",
			Detail: fmt.Sprintf("realized program failed to execute: %v", err)}}
	}
	for wi := range want {
		if v := diffStream(wi, want[wi], got[wi]); v != nil {
			return []Violation{*v}
		}
	}
	return nil
}

// diffStream compares one warp's store streams and describes the first
// divergence. Streams are flat [addr, word...] records.
func diffStream(warp int, want, got []uint32) *Violation {
	n := len(want)
	if len(got) < n {
		n = len(got)
	}
	for i := 0; i < n; i++ {
		if want[i] != got[i] {
			return &Violation{Invariant: "differential",
				Detail: fmt.Sprintf("warp %d: store stream diverges at word %d: got %#x, want %#x",
					warp, i, got[i], want[i])}
		}
	}
	if len(want) != len(got) {
		return &Violation{Invariant: "differential",
			Detail: fmt.Sprintf("warp %d: %d store words, want %d",
				warp, len(got), len(want))}
	}
	return nil
}

// storeStreams executes every warp of a launch and captures its global
// store stream as flat [addr, word...] records, using Peek to resolve the
// store operands before each step commits.
func storeStreams(p *isa.Program, gridWarps, stepLimit int) ([][]uint32, error) {
	if err := isa.Validate(p); err != nil {
		return nil, err
	}
	layout, err := interp.NewLayout(p)
	if err != nil {
		return nil, err
	}
	if layout.RegHighWater > interp.RegFileSize {
		return nil, fmt.Errorf("verify: program needs %d registers, file holds %d",
			layout.RegHighWater, interp.RegFileSize)
	}
	lc := &interp.Launch{Prog: p, GridWarps: gridWarps}
	wpb := lc.WarpsPerBlock()
	sharedWords := (p.SharedBytes + 3) / 4
	streams := make([][]uint32, gridWarps)
	var shared []uint32
	for wi := 0; wi < gridWarps; wi++ {
		if wi%wpb == 0 && sharedWords > 0 {
			shared = make([]uint32, sharedWords)
		}
		w := interp.NewWarp(lc, layout, wi, shared)
		var stream []uint32
		for steps := 0; !w.Done(); steps++ {
			if steps >= stepLimit {
				return nil, fmt.Errorf("verify: warp %d: %w", wi, interp.ErrStepLimit)
			}
			ev := w.Peek()
			if ev.Kind == interp.KindStore && ev.Space == interp.SpaceGlobal {
				stream = append(stream, ev.Addr)
				for k := 0; k < ev.Instr.W(); k++ {
					stream = append(stream, w.ReadAbsReg(ev.AbsSrc[1]+k))
				}
			}
			if _, err := w.Step(); err != nil {
				return nil, fmt.Errorf("verify: warp %d: %w", wi, err)
			}
		}
		streams[wi] = stream
	}
	return streams, nil
}

// diffChecksum is the SIMT-mode oracle: per-program full runs compared by
// store count and the order-sensitive (address, value) checksum.
func diffChecksum(orig, realized *isa.Program, gridWarps, stepLimit int) []Violation {
	want, err := interp.Run(&interp.Launch{Prog: orig, GridWarps: gridWarps}, stepLimit)
	if err != nil {
		return nil // no reference
	}
	got, err := interp.Run(&interp.Launch{Prog: realized, GridWarps: gridWarps}, stepLimit)
	if err != nil {
		if errors.Is(err, interp.ErrStepLimit) {
			return nil // see storeStreams: overhead may cross the budget
		}
		return []Violation{{Invariant: "differential",
			Detail: fmt.Sprintf("realized program failed to execute: %v", err)}}
	}
	if got.Stores != want.Stores {
		return []Violation{{Invariant: "differential",
			Detail: fmt.Sprintf("%d stores, want %d", got.Stores, want.Stores)}}
	}
	if got.Checksum != want.Checksum {
		return []Violation{{Invariant: "differential",
			Detail: fmt.Sprintf("store checksum %#x, want %#x", got.Checksum, want.Checksum)}}
	}
	return nil
}
