// Package device describes the two GPU platforms the paper evaluates on —
// NVIDIA GTX680 (Kepler) and Tesla C2075 (Fermi) — with the architectural
// limits the occupancy calculator needs and the timing/energy parameters
// the simulator needs.
package device

import (
	"fmt"
	"hash/fnv"
)

// CacheConfig selects the shared-memory / L1 split of the combined 64 KB
// on-chip array (paper Table 3: small cache = 16 KB L1 + 48 KB shared,
// large cache = 48 KB L1 + 16 KB shared).
type CacheConfig uint8

// Cache configurations.
const (
	SmallCache CacheConfig = iota + 1 // 16 KB L1, 48 KB shared
	LargeCache                        // 48 KB L1, 16 KB shared
)

// String returns the paper's abbreviation.
func (c CacheConfig) String() string {
	if c == LargeCache {
		return "LC"
	}
	return "SC"
}

// Device is one GPU platform.
type Device struct {
	Name string

	// Architectural limits (per SM unless noted).
	SMs              int
	RegsPerSM        int
	MaxRegsPerThread int
	MaxWarpsPerSM    int
	MaxThreadsPerSM  int
	MaxBlocksPerSM   int
	WarpSize         int
	// RegGranularity is the register-file allocation unit in registers
	// per warp (register banking forces rounding, paper Section 2).
	RegGranularity int
	// SharedL1Bytes is the combined shared-memory + L1 array size.
	SharedL1Bytes int
	// SmemGranularity is the shared-memory allocation unit in bytes.
	SmemGranularity int

	// L1GlobalCaching: Fermi (C2075) caches global loads in L1; Kepler
	// (GTX680) reserves L1 for local memory only (paper Section 4.2).
	L1GlobalCaching bool

	// Timing model (cycles).
	IssueWidth  int // instructions issued per SM per cycle
	ALULatency  int
	FPULatency  int
	SharedLat   int
	L1Latency   int
	L2Latency   int
	DRAMLatency int
	// MSHRs bounds outstanding misses per SM.
	MSHRs int
	// DRAMServiceCycles is the channel occupancy per 128-byte line; queueing
	// behind it models bandwidth saturation.
	DRAMServiceCycles float64
	// SharedServiceCycles is the shared-memory port occupancy per warp
	// access (the banked array serves about one warp-wide access per
	// cycle); queueing behind it models shared-memory bandwidth.
	SharedServiceCycles float64
	// L2Bytes is the device-wide L2 size.
	L2Bytes   int
	LineBytes int

	// Energy model (arbitrary units; relative comparisons only).
	// StaticPower burns per SM-cycle; RegFilePower per SM-cycle scales with
	// the fraction of the register file allocated; per-op energies add.
	StaticPower  float64
	RegFilePower float64
	EnergyALU    float64
	EnergyMem    float64
	EnergyShared float64
}

// Fingerprint returns a stable hash over every architectural, timing, and
// energy parameter of the device. Two devices with equal fingerprints
// produce identical realizations and simulations, so the realization cache
// can key on it instead of the (ambiguous) name.
func (d *Device) Fingerprint() uint64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "%#v", *d)
	return h.Sum64()
}

// GTX680 returns the Kepler platform of the paper: 8 SMs, 65536 registers
// and 64 KB shared+L1 per SM, 64 warps / 2048 threads per SM.
func GTX680() *Device {
	return &Device{
		Name:             "GTX680",
		SMs:              8,
		RegsPerSM:        65536,
		MaxRegsPerThread: 63,
		MaxWarpsPerSM:    64,
		MaxThreadsPerSM:  2048,
		MaxBlocksPerSM:   16,
		WarpSize:         32,
		RegGranularity:   256,
		SharedL1Bytes:    64 << 10,
		SmemGranularity:  256,
		L1GlobalCaching:  false,

		IssueWidth:          2,
		ALULatency:          10,
		FPULatency:          10,
		SharedLat:           28,
		L1Latency:           28,
		L2Latency:           100,
		DRAMLatency:         240,
		MSHRs:               64,
		DRAMServiceCycles:   1.6,
		SharedServiceCycles: 1.0,
		L2Bytes:             512 << 10,
		LineBytes:           128,

		StaticPower:  40,
		RegFilePower: 420,
		EnergyALU:    1.0,
		EnergyMem:    7,
		EnergyShared: 2,
	}
}

// TeslaC2075 returns the Fermi platform of the paper: 14 SMs, 32768
// registers and 64 KB shared+L1 per SM, 48 warps / 1536 threads per SM.
func TeslaC2075() *Device {
	return &Device{
		Name:             "TeslaC2075",
		SMs:              14,
		RegsPerSM:        32768,
		MaxRegsPerThread: 63,
		MaxWarpsPerSM:    48,
		MaxThreadsPerSM:  1536,
		MaxBlocksPerSM:   8,
		WarpSize:         32,
		RegGranularity:   64,
		SharedL1Bytes:    64 << 10,
		SmemGranularity:  128,
		L1GlobalCaching:  true,

		IssueWidth:          1,
		ALULatency:          16,
		FPULatency:          16,
		SharedLat:           32,
		L1Latency:           32,
		L2Latency:           120,
		DRAMLatency:         280,
		MSHRs:               48,
		DRAMServiceCycles:   2.4,
		SharedServiceCycles: 1.0,
		L2Bytes:             768 << 10,
		LineBytes:           128,

		StaticPower:  45,
		RegFilePower: 350,
		EnergyALU:    1.2,
		EnergyMem:    8,
		EnergyShared: 2.5,
	}
}

// GTX580 returns a Fermi GF110 configuration (16 SMs), demonstrating the
// paper's claim that supporting an additional architecture only needs a
// new device description — the middle end and tuning algorithms are
// unchanged.
func GTX580() *Device {
	d := TeslaC2075()
	d.Name = "GTX580"
	d.SMs = 16
	d.DRAMServiceCycles = 1.8 // 192 GB/s vs the C2075's 144
	return d
}

// TeslaK20 returns a Kepler GK110 configuration: 13 SMs and, notably, a
// 255-register per-thread ceiling — occupancy realization gets a much
// wider register budget range than on the evaluation platforms.
func TeslaK20() *Device {
	d := GTX680()
	d.Name = "TeslaK20"
	d.SMs = 13
	d.MaxRegsPerThread = 255
	d.DRAMServiceCycles = 1.5 // 208 GB/s
	return d
}

// Both returns the two evaluation platforms in paper order.
func Both() []*Device { return []*Device{TeslaC2075(), GTX680()} }

// All returns every described platform (the paper's two plus the
// extensibility demonstrations).
func All() []*Device {
	return []*Device{TeslaC2075(), GTX680(), GTX580(), TeslaK20()}
}

// L1Bytes returns the L1 size under the given cache configuration.
func (d *Device) L1Bytes(cfg CacheConfig) int {
	if cfg == LargeCache {
		return 48 << 10
	}
	return 16 << 10
}

// SharedBytes returns the shared-memory size under the given cache
// configuration.
func (d *Device) SharedBytes(cfg CacheConfig) int {
	return d.SharedL1Bytes - d.L1Bytes(cfg)
}
