package device

import "testing"

func TestPaperPlatformLimits(t *testing.T) {
	g := GTX680()
	// Paper Section 4 "Platform": 8 SMs, 65536 registers/SM, 64 KB
	// shared+L1, 64 warps and 2048 threads max per SM.
	if g.SMs != 8 || g.RegsPerSM != 65536 || g.SharedL1Bytes != 64<<10 ||
		g.MaxWarpsPerSM != 64 || g.MaxThreadsPerSM != 2048 {
		t.Errorf("GTX680 limits diverge from the paper: %+v", g)
	}
	c := TeslaC2075()
	// 14 SMs, 32768 registers/SM, 48 warps and 1536 threads max per SM.
	if c.SMs != 14 || c.RegsPerSM != 32768 || c.SharedL1Bytes != 64<<10 ||
		c.MaxWarpsPerSM != 48 || c.MaxThreadsPerSM != 1536 {
		t.Errorf("C2075 limits diverge from the paper: %+v", c)
	}
	if !c.L1GlobalCaching || g.L1GlobalCaching {
		t.Error("L1 policy: C2075 caches globals, GTX680 does not (paper Section 4.2)")
	}
}

func TestCacheConfigSplit(t *testing.T) {
	d := GTX680()
	if d.L1Bytes(SmallCache) != 16<<10 || d.SharedBytes(SmallCache) != 48<<10 {
		t.Error("small cache split wrong")
	}
	if d.L1Bytes(LargeCache) != 48<<10 || d.SharedBytes(LargeCache) != 16<<10 {
		t.Error("large cache split wrong")
	}
	if SmallCache.String() != "SC" || LargeCache.String() != "LC" {
		t.Error("cache config abbreviations wrong")
	}
}

func TestDeviceConstructorsAreFresh(t *testing.T) {
	a := GTX680()
	a.SMs = 99
	if GTX680().SMs == 99 {
		t.Error("device constructors share state")
	}
}

func TestExtensibilityPlatforms(t *testing.T) {
	if len(All()) != 4 {
		t.Fatalf("All() = %d devices", len(All()))
	}
	k20 := TeslaK20()
	if k20.MaxRegsPerThread != 255 {
		t.Errorf("K20 register ceiling = %d, want 255", k20.MaxRegsPerThread)
	}
	if GTX580().SMs != 16 {
		t.Errorf("GTX580 SMs = %d, want 16", GTX580().SMs)
	}
	// Derived devices must not alias their base configurations.
	if TeslaC2075().SMs == 16 || GTX680().MaxRegsPerThread == 255 {
		t.Error("derived devices mutated their base configurations")
	}
	names := map[string]bool{}
	for _, d := range All() {
		if names[d.Name] {
			t.Errorf("duplicate device name %s", d.Name)
		}
		names[d.Name] = true
	}
}
