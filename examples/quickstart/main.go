// Quickstart: write a kernel in OASM, compile it with Orion, and let the
// runtime tuner pick the occupancy.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	orion "repro"
)

// A small streaming kernel: each warp reduces a strided window of global
// memory into eight accumulators. Written in OASM, the SASS-like virtual
// ISA the Orion compiler operates on.
const src = `
.kernel quickstart
.blockdim 256
.func main
  RDSP v0, WARPID      ; which warp am I?
  MOVI v1, 13
  SHL v2, v0, v1       ; 8 KB window per warp
  MOVI v3, 0           ; loop counter
  MOVI v4, 0           ; position within the window
  MOVI v10, 1          ; accumulators v10..v17
  MOVI v11, 2
  MOVI v12, 3
  MOVI v13, 4
  MOVI v14, 5
  MOVI v15, 6
  MOVI v16, 7
  MOVI v17, 8
loop:
  IADD v5, v2, v4
  LDG v6, [v5]
  XOR v10, v10, v6
  IMAD v11, v11, v10, v6
  IADD v12, v12, v11
  XOR v13, v13, v12
  IADD v14, v14, v6
  XOR v15, v15, v14
  IADD v16, v16, v15
  XOR v17, v17, v16
  MOVI v7, 128
  IADD v4, v4, v7
  MOVI v7, 8191
  AND v4, v4, v7
  MOVI v7, 1
  IADD v3, v3, v7
  MOVI v8, 32
  ISET.LT v9, v3, v8
  CBR v9, loop
  XOR v10, v10, v17
  STG [v2], v10
  EXIT
`

func main() {
	prog, err := orion.ParseKernel(src)
	if err != nil {
		log.Fatal(err)
	}
	if err := orion.ValidateKernel(prog); err != nil {
		log.Fatal(err)
	}

	dev := orion.GTX680()
	r := orion.NewRealizer(dev, orion.SmallCache)

	// Compile-time tuning: max-live picks the direction, the compiler
	// emits candidate binaries (paper Figure 8).
	cr, err := r.Compile(prog, true)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("max-live %d -> direction %v\n", cr.MaxLive, cr.Direction)
	fmt.Printf("original binary: %d regs/thread, natural occupancy %.2f\n",
		cr.Original.RegsPerThread, cr.Original.Occupancy(dev))
	fmt.Printf("candidates: %d (paper caps this at 5)\n\n", len(cr.Candidates))

	// End-to-end: the runtime tuner walks the candidates using measured
	// kernel times (paper Figure 9), here over 8 application iterations of
	// a 2048-warp grid on the simulated GTX680.
	rep, err := r.Tune(prog, orion.Launch{GridWarps: 2048, Iterations: 8})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("selected occupancy: %.2f (%d warps/SM) after %d tuning iterations\n",
		rep.Chosen.Occupancy(dev), rep.Chosen.TargetWarps, rep.TuneIterations)

	// Compare with the nvcc-like baseline (no occupancy tuning).
	_, base, err := r.Baseline(prog, 2048)
	if err != nil {
		log.Fatal(err)
	}
	final := rep.History[len(rep.History)-1].Stats
	fmt.Printf("baseline: %d cycles/iteration; tuned: %d cycles/iteration (%.2fx)\n",
		base.Cycles, final.Cycles, float64(base.Cycles)/float64(final.Cycles))

	// The tuned binary computes the same result as the original program.
	want, _, err := orion.Execute(prog, 64)
	if err != nil {
		log.Fatal(err)
	}
	got, _, err := orion.Execute(rep.Chosen.Version.Prog, 64)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("semantics preserved: %v (checksum %016x)\n", want == got, got)
}
