// SIMT-mode demonstration: lane-level execution with control divergence
// and memory coalescing — the "dynamic factors" (Section 3) that make
// occupancy impossible to choose purely statically. The same kernel is
// run with coalesced and uncoalesced per-lane addressing; the uncoalesced
// version pays one memory transaction per lane and its best occupancy
// shifts.
//
//	go run ./examples/divergence
package main

import (
	"fmt"
	"log"
	"strings"

	orion "repro"
)

// laneKernel strides each lane's addresses by 1<<shift bytes: shift 2
// keeps a warp's access inside one 128-byte line, shift 7 touches 32.
func laneKernel(shift int) string {
	return fmt.Sprintf(`
.kernel lanes
.blockdim 256
.func main
  RDSP v0, LANEID
  RDSP v1, WARPID
  MOVI v2, 17
  SHL v3, v1, v2
  MOVI v4, %d
  SHL v5, v0, v4
  IADD v6, v3, v5
  MOVI v7, 0
  MOVI v8, 0
loop:
  LDG v9, [v6]
  IADD v8, v8, v9
  MOVI v10, 4096
  IADD v6, v6, v10
  MOVI v11, 1
  IADD v7, v7, v11
  MOVI v12, 24
  ISET.LT v13, v7, v12
  CBR v13, loop
  STG [v3], v8
  EXIT
`, shift)
}

func main() {
	dev := orion.GTX680()
	for _, cfg := range []struct {
		name  string
		shift int
	}{
		{"coalesced (4B lane stride)", 2},
		{"uncoalesced (128B lane stride)", 7},
	} {
		prog, err := orion.ParseKernel(laneKernel(cfg.shift))
		if err != nil {
			log.Fatal(err)
		}
		r := orion.NewRealizer(dev, orion.SmallCache)
		sweep, err := r.Sweep(prog, 1024)
		if err != nil {
			log.Fatal(err)
		}
		best := sweep[0].Stats.Cycles
		for _, lr := range sweep {
			if lr.Stats.Cycles < best {
				best = lr.Stats.Cycles
			}
		}
		fmt.Printf("%s:\n", cfg.name)
		for _, lr := range sweep {
			n := float64(lr.Stats.Cycles) / float64(best)
			fmt.Printf("  occ %5.3f: %8d cycles  %5.3f %s (DRAM lines %d)\n",
				lr.Occupancy(dev.MaxWarpsPerSM), lr.Stats.Cycles, n,
				strings.Repeat("#", int(n*12)), lr.Stats.DRAMLines)
		}
		fmt.Println()
	}
	fmt.Println("the uncoalesced variant moves ~32x the DRAM lines; its curve saturates")
	fmt.Println("at a different occupancy — exactly why Orion measures instead of predicting")
}
