// Downward tuning (paper Figures 12 and 13): for kernels with low
// register pressure the hardware already runs at maximum occupancy, and
// the only useful direction is down — fewer resident warps at (nearly)
// the same speed, saving registers and energy. This example tunes srad on
// the simulated Tesla C2075 and reports the savings.
//
//	go run ./examples/energysave
package main

import (
	"fmt"
	"log"

	orion "repro"
)

func main() {
	k, err := orion.Benchmark("srad")
	if err != nil {
		log.Fatal(err)
	}
	dev := orion.TeslaC2075()
	r := orion.NewRealizer(dev, orion.SmallCache)
	grid := 1024

	ml, err := orion.MaxLive(k.Prog)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s: max-live %d (< threshold %d on %s) -> tune occupancy down\n\n",
		k.Name, ml, dev.RegsPerSM/dev.MaxThreadsPerSM, dev.Name)

	baseVer, baseStats, err := r.Baseline(k.Prog, grid)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("nvcc baseline: occupancy %.3f (%d warps/SM), %d cycles, energy %.0f (register file %.0f)\n",
		baseVer.Occupancy(dev), baseVer.Natural.ActiveWarps,
		baseStats.Cycles, baseStats.Energy, baseStats.EnergyRF)

	rep, err := r.Tune(k.Prog, orion.Launch{GridWarps: grid, Iterations: k.Iterations})
	if err != nil {
		log.Fatal(err)
	}
	sel := rep.Chosen
	st, err := orion.Simulate(sel.Version, dev, orion.SmallCache, sel.TargetWarps, grid)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("Orion selected: occupancy %.3f (%d warps/SM) after %d tuning iterations\n",
		sel.Occupancy(dev), sel.TargetWarps, rep.TuneIterations)
	fmt.Printf("  runtime: %d cycles (%+.2f%% vs baseline)\n",
		st.Cycles, (float64(st.Cycles)/float64(baseStats.Cycles)-1)*100)
	warps := sel.TargetWarps
	if n := sel.Version.Natural.ActiveWarps; n < warps {
		warps = n
	}
	regRatio := float64(warps*sel.Version.RegsPerThread) /
		float64(baseVer.Natural.ActiveWarps*baseVer.RegsPerThread)
	fmt.Printf("  register file in use: %.1f%% of baseline (%.1f%% saved)\n",
		regRatio*100, (1-regRatio)*100)
	fmt.Printf("  energy: %.0f (%.1f%% saved; register-file component %.1f%% saved)\n",
		st.Energy, (1-st.Energy/baseStats.Energy)*100,
		(1-st.EnergyRF/baseStats.EnergyRF)*100)
}
