// The paper's second principle (Figure 2): matrixMul's performance
// plateaus above half occupancy, so instead of stopping at "fastest", the
// tuner keeps walking to find the whole plateau — the lowest occupancy
// with best-class performance frees registers and shared memory for other
// optimizations without costing any time.
//
//	go run ./examples/matmul
package main

import (
	"fmt"
	"log"
	"strings"

	orion "repro"
)

func main() {
	k, err := orion.Benchmark("matrixMul")
	if err != nil {
		log.Fatal(err)
	}
	dev := orion.TeslaC2075()
	r := orion.NewRealizer(dev, orion.SmallCache)
	grid := 1024

	sweep, err := r.Sweep(k.Prog, grid)
	if err != nil {
		log.Fatal(err)
	}
	best := sweep[0].Stats.Cycles
	for _, lr := range sweep {
		if lr.Stats.Cycles < best {
			best = lr.Stats.Cycles
		}
	}
	fmt.Printf("%s on %s (paper Figure 2)\n\n", k.Name, dev.Name)
	fmt.Println("occupancy  normalized runtime")
	for _, lr := range sweep {
		n := float64(lr.Stats.Cycles) / float64(best)
		fmt.Printf("  %5.3f    %5.3f %s\n", lr.Occupancy(dev.MaxWarpsPerSM), n,
			strings.Repeat("#", int(n*20)))
	}

	// The plateau: every level within the tuner's 2% tolerance of the best.
	fmt.Println("\nplateau (within 2% of best):")
	var lowest *orion.LevelResult
	for i := range sweep {
		lr := &sweep[i]
		if float64(lr.Stats.Cycles) <= float64(best)*1.02 {
			fmt.Printf("  occupancy %.3f: %d regs/thread, %d B shared, energy %.0f\n",
				lr.Occupancy(dev.MaxWarpsPerSM), lr.Version.RegsPerThread,
				lr.Version.SharedPerBlock, lr.Stats.Energy)
			if lowest == nil {
				lowest = lr
			}
		}
	}
	if lowest != nil {
		top := &sweep[len(sweep)-1]
		fmt.Printf("\nrunning at the plateau's lowest level (%.3f instead of %.3f) saves %.1f%% register-file energy at equal performance\n",
			lowest.Occupancy(dev.MaxWarpsPerSM), top.Occupancy(dev.MaxWarpsPerSM),
			(1-lowest.Stats.EnergyRF/top.Stats.EnergyRF)*100)
	}
}
