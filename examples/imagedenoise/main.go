// The paper's motivating example (Figure 1): imageDenoising's runtime
// varies ~3x across occupancy levels on GTX680, with the best point in
// the middle of the range — too high starves latency hiding, too low
// forces spills. This example sweeps every level, prints the curve, and
// shows what Orion selects against the nvcc baseline.
//
//	go run ./examples/imagedenoise
package main

import (
	"fmt"
	"log"
	"strings"

	orion "repro"
)

func main() {
	k, err := orion.Benchmark("imageDenoising")
	if err != nil {
		log.Fatal(err)
	}
	dev := orion.GTX680()
	r := orion.NewRealizer(dev, orion.SmallCache)
	grid := 2144 // half the full evaluation grid, for speed

	fmt.Printf("%s on %s: exhaustive occupancy sweep\n\n", k.Name, dev.Name)
	sweep, err := r.Sweep(k.Prog, grid)
	if err != nil {
		log.Fatal(err)
	}
	best := sweep[0].Stats.Cycles
	for _, lr := range sweep {
		if lr.Stats.Cycles < best {
			best = lr.Stats.Cycles
		}
	}
	fmt.Println("occupancy  regs  shared  local  normalized runtime")
	for _, lr := range sweep {
		n := float64(lr.Stats.Cycles) / float64(best)
		bar := strings.Repeat("#", int(n*20))
		fmt.Printf("  %5.3f    %3d   %5d   %3d   %5.3f %s\n",
			lr.Occupancy(dev.MaxWarpsPerSM), lr.Version.RegsPerThread,
			lr.Version.SharedPerBlock, lr.Version.LocalSlots, n, bar)
	}

	rep, err := r.Tune(k.Prog, orion.Launch{GridWarps: grid, Iterations: k.Iterations})
	if err != nil {
		log.Fatal(err)
	}
	_, base, err := r.Baseline(k.Prog, grid)
	if err != nil {
		log.Fatal(err)
	}
	final := rep.History[len(rep.History)-1].Stats
	fmt.Printf("\nnvcc baseline occupancy: %.3f, %d cycles\n",
		rep.Compile.Original.Occupancy(dev), base.Cycles)
	fmt.Printf("Orion selected occupancy %.3f in %d iterations: %d cycles (%.2fx speedup)\n",
		rep.Chosen.Occupancy(dev), rep.TuneIterations, final.Cycles,
		float64(base.Cycles)/float64(final.Cycles))
}
