// TestTVSmoke is the gate behind `make tv-smoke`: every benchmark kernel
// realized at every feasible occupancy level on both devices with the
// middle end on and translation validation strict. The claim it enforces
// is precision, not just soundness — on the real pass pipeline over the
// real corpus the validator must prove every application it sees: zero
// rejections (no pass miscompiles) and zero abstentions (the normalizer
// is complete for everything the passes actually do, so the differential
// oracle is never needed as a fallback). A rejection here is a compiler
// bug; an abstention is a validator-coverage regression.
package orion_test

import (
	"errors"
	"testing"

	orion "repro"
	"repro/internal/core"
)

func TestTVSmoke(t *testing.T) {
	ks, err := orion.Benchmarks()
	if err != nil {
		t.Fatal(err)
	}
	// The realize cache would swallow repeated realizations from earlier
	// tests in the same binary; bypass it so every level actually runs the
	// pipeline, and reset the TV counters so the assertion covers exactly
	// this sweep.
	wasOn := core.RealizeCacheEnabled()
	core.SetRealizeCacheEnabled(false)
	defer core.SetRealizeCacheEnabled(wasOn)
	orion.ResetTVCounters()

	levels := 0
	for _, d := range orion.Devices() {
		for _, k := range ks {
			r := orion.NewRealizer(d, orion.SmallCache)
			r.Opt = true
			r.TV = orion.TVStrict
			lad := r.NewLadder(k.Prog)
			for _, lvl := range orion.OccupancyLevels(d, k.Prog.BlockDim) {
				if _, err := lad.Realize(lvl); err != nil {
					var inf *core.ErrInfeasible
					if !errors.As(err, &inf) {
						t.Fatalf("%s on %s level %d: %v", k.Name, d.Name, lvl, err)
					}
					continue
				}
				levels++
			}
		}
	}
	checked, rejected, abstained := orion.TVCounters()
	t.Logf("tv-smoke: %d levels realized, %d pass applications checked, %d rejected, %d abstained",
		levels, checked, rejected, abstained)
	if checked == 0 {
		t.Fatal("no pass application was validated: the middle end never ran (smoke is vacuous)")
	}
	if rejected != 0 {
		t.Fatalf("%d pass applications rejected: a pass produced a real miscompile", rejected)
	}
	if abstained != 0 {
		t.Fatalf("%d pass applications abstained: the normalizer lost precision on the real corpus", abstained)
	}
}
