// TestWriteOptBench is the artifact generator behind `make bench-opt`:
// it times the cold occupancy sweep and the cached end-to-end suite with
// the pressure-reducing middle end off and on, collects the per-kernel
// register-pressure outcomes (chain max-live before/after the passes,
// spill instructions at the tightest shared feasible level), and records
// everything as BENCH_opt.json. It is gated on ORION_BENCH_OPT_OUT so
// `go test ./...` never pays for four full measurement passes.
package orion_test

import (
	"encoding/json"
	"errors"
	"os"
	"runtime"
	"testing"

	orion "repro"
	"repro/internal/core"
	"repro/internal/isa"
)

// optBenchSide is one configuration's wall-clock measurement.
type optBenchSide struct {
	NsPerOp int64   `json:"ns_per_op"`
	Seconds float64 `json:"seconds"`
}

// optBenchPair is an off/on measurement of the same workload; Overhead
// is on/off (>1 means the pass pipeline costs compile time, which it
// should — the claim is pressure reduction, not speed).
type optBenchPair struct {
	Off      optBenchSide `json:"off"`
	On       optBenchSide `json:"on"`
	Overhead float64      `json:"overhead_on_vs_off"`
}

// optBenchKernel is one kernel/device row: pressure and spill outcomes
// at the tightest occupancy level feasible under both configurations,
// plus how many levels each configuration could realize at all.
type optBenchKernel struct {
	Kernel      string `json:"kernel"`
	Device      string `json:"device"`
	TargetWarps int    `json:"target_warps"`
	MaxLivePre  int    `json:"max_live_pre"`
	MaxLivePost int    `json:"max_live_post"`
	SpillsOff   int    `json:"spill_instrs_off"`
	SpillsOn    int    `json:"spill_instrs_on"`
	LevelsOff   int    `json:"feasible_levels_off"`
	LevelsOn    int    `json:"feasible_levels_on"`
}

// optBenchReport mirrors the shape of the repo's other BENCH_*.json
// artifacts: what was run, on what, and the headline numbers.
type optBenchReport struct {
	Benchmark   string           `json:"benchmark"`
	Description string           `json:"description"`
	Command     string           `json:"command"`
	Scale       float64          `json:"scale"`
	GoMaxProcs  int              `json:"gomaxprocs"`
	ColdSweep   optBenchPair     `json:"cold_sweep"`
	Suite       optBenchPair     `json:"suite_end_to_end"`
	Kernels     []optBenchKernel `json:"kernels"`
	// KernelsReduced counts kernels whose chain max-live shrank at their
	// tightest shared level; KernelsSpillFree counts kernels that became
	// spill-free there where the baseline spilled.
	KernelsReduced   int    `json:"kernels_reduced"`
	KernelsSpillFree int    `json:"kernels_spill_free"`
	Notes            string `json:"notes"`
}

// optColdSweep is BenchmarkSweepCold with the middle end switchable:
// every kernel realized at every feasible occupancy level, realize cache
// off, verifier off, one ladder per kernel per iteration.
func optColdSweep(b *testing.B, opt bool) {
	b.Helper()
	ks, err := orion.Benchmarks()
	if err != nil {
		b.Fatal(err)
	}
	wasOn := core.RealizeCacheEnabled()
	core.SetRealizeCacheEnabled(false)
	defer core.SetRealizeCacheEnabled(wasOn)
	d := orion.GTX680()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, k := range ks {
			r := orion.NewRealizer(d, orion.SmallCache)
			r.Verify = false
			r.Opt = opt
			lad := r.NewLadder(k.Prog)
			for _, lvl := range orion.OccupancyLevels(d, k.Prog.BlockDim) {
				if _, err := lad.Realize(lvl); err != nil {
					var inf *core.ErrInfeasible
					if !errors.As(err, &inf) {
						b.Fatalf("%s level %d: %v", k.Name, lvl, err)
					}
				}
			}
		}
	}
}

// optSuite is suiteEndToEnd with the middle end switchable: the full
// experiment suite, caches reset each iteration.
func optSuite(b *testing.B, opt bool) {
	b.Helper()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.ResetRealizeCache()
		core.ResetRunCache()
		s := orion.NewSuite(benchScale)
		s.Opt = opt
		for _, e := range s.Experiments() {
			if _, err := e.Run(); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// optKernelRows realizes every kernel on both devices with the middle
// end off and on, and reports the pressure/spill comparison at the
// tightest level both configurations can realize.
func optKernelRows() ([]optBenchKernel, error) {
	countSpills := func(p *isa.Program) int {
		n := 0
		for _, f := range p.Funcs {
			for i := range f.Instrs {
				if f.Instrs[i].IsSpill() {
					n++
				}
			}
		}
		return n
	}
	ks, err := orion.Benchmarks()
	if err != nil {
		return nil, err
	}
	var rows []optBenchKernel
	for _, d := range orion.Devices() {
		for _, k := range ks {
			off := orion.NewRealizer(d, orion.SmallCache)
			on := orion.NewRealizer(d, orion.SmallCache)
			on.Opt = true
			loff, lon := off.NewLadder(k.Prog), on.NewLadder(k.Prog)
			row := optBenchKernel{Kernel: k.Name, Device: d.Name}
			for _, lvl := range orion.OccupancyLevels(d, k.Prog.BlockDim) {
				voff, eoff := loff.Realize(lvl)
				von, eon := lon.Realize(lvl)
				if eoff == nil {
					row.LevelsOff++
				}
				if eon == nil {
					row.LevelsOn++
				}
				if eoff == nil && eon == nil {
					// Levels ascend, so the last shared feasible level wins.
					row.TargetWarps = lvl
					row.MaxLivePre = von.MaxLivePre
					row.MaxLivePost = von.MaxLivePost
					row.SpillsOff = countSpills(voff.Prog)
					row.SpillsOn = countSpills(von.Prog)
				}
			}
			rows = append(rows, row)
		}
	}
	return rows, nil
}

func TestWriteOptBench(t *testing.T) {
	out := os.Getenv("ORION_BENCH_OPT_OUT")
	if out == "" {
		t.Skip("set ORION_BENCH_OPT_OUT to write the middle-end artifact")
	}

	measure := func(fn func(*testing.B, bool), opt bool) optBenchSide {
		res := testing.Benchmark(func(b *testing.B) { fn(b, opt) })
		ns := res.NsPerOp()
		return optBenchSide{NsPerOp: ns, Seconds: float64(ns) / 1e9}
	}
	pair := func(fn func(*testing.B, bool)) optBenchPair {
		p := optBenchPair{Off: measure(fn, false), On: measure(fn, true)}
		if p.Off.Seconds > 0 {
			p.Overhead = p.On.Seconds / p.Off.Seconds
		}
		return p
	}

	rows, err := optKernelRows()
	if err != nil {
		t.Fatal(err)
	}
	report := optBenchReport{
		Benchmark: "BenchmarkSweepCold / BenchmarkSuiteEndToEnd",
		Description: "Cold occupancy sweep (every kernel, every level, realize cache off) " +
			"and cached end-to-end suite, each timed with the pressure-reducing middle " +
			"end off and on, plus per-kernel pressure/spill outcomes on both devices.",
		Command:    "make bench-opt",
		Scale:      benchScale,
		GoMaxProcs: runtime.GOMAXPROCS(0),
		ColdSweep:  pair(optColdSweep),
		Suite:      pair(optSuite),
		Kernels:    rows,
		Notes: "Overhead is compile-time cost: the middle end runs remat, loop-boundary " +
			"live-range splitting, and pressure-aware scheduling on every function over " +
			"budget, then re-prepares the allocator on the transformed body. The win is " +
			"in the kernel rows: lower chain max-live and fewer (often zero) spill " +
			"instructions at the tightest occupancy levels, i.e. levels that previously " +
			"paid spill traffic now run clean.",
	}
	reduced, spillFree := map[string]bool{}, map[string]bool{}
	for _, r := range rows {
		if r.MaxLivePost < r.MaxLivePre {
			reduced[r.Kernel] = true
		}
		if r.SpillsOff > 0 && r.SpillsOn == 0 {
			spillFree[r.Kernel] = true
		}
	}
	report.KernelsReduced, report.KernelsSpillFree = len(reduced), len(spillFree)

	data, err := json.MarshalIndent(&report, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	data = append(data, '\n')
	if err := os.WriteFile(out, data, 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("cold sweep %.2fs -> %.2fs (%.2fx), suite %.2fs -> %.2fs (%.2fx), %d kernels reduced, %d spill-free",
		report.ColdSweep.Off.Seconds, report.ColdSweep.On.Seconds, report.ColdSweep.Overhead,
		report.Suite.Off.Seconds, report.Suite.On.Seconds, report.Suite.Overhead,
		report.KernelsReduced, report.KernelsSpillFree)

	// Leave the process-wide caches in their default state for any tests
	// that run after this one in the same binary.
	core.ResetRealizeCache()
	core.ResetRunCache()
}
