// Package orion is a from-scratch reproduction of "Orion: A Framework for
// GPU Occupancy Tuning" (Hayes, Li, Chavarría-Miranda, Song, Zhang,
// ACM Middleware 2016).
//
// Orion tunes the occupancy of GPU kernels — the fraction of the
// hardware's warp slots actually resident — by combining a binary-level
// compiler with a runtime feedback tuner. The compiler realizes occupancy
// levels by register allocation (a Chaitin-Briggs variant with wide
// variables), spilling into shared memory and L1-backed local memory, and
// an inter-procedural compressible stack whose slot layout is optimized by
// Kuhn-Munkres matching; the runtime walks candidate binaries using
// measured kernel times, splitting kernels when an application offers no
// iterations.
//
// Since the paper's platforms (NVIDIA GTX680 and Tesla C2075) cannot be
// assumed, this reproduction supplies the full substrate in Go: a
// SASS-like virtual ISA (OASM), assembler/disassembler and binary
// encoder/decoder, SSA-based middle end, the allocators, an NVIDIA-style
// occupancy calculator, and a cycle-approximate multi-SM timing simulator
// with caches, DRAM bandwidth queueing, and an energy model. See DESIGN.md
// for the substitution rationale and EXPERIMENTS.md for paper-vs-measured
// results.
//
// Quick start:
//
//	prog, err := orion.ParseKernel(src)      // OASM text -> program
//	r := orion.NewRealizer(orion.GTX680(), orion.SmallCache)
//	report, err := r.Tune(prog, orion.Launch{GridWarps: 4096, Iterations: 8})
//	fmt.Println(report.Chosen.TargetWarps)   // the selected occupancy
package orion

import (
	"repro/internal/analytic"
	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/interp"
	"repro/internal/ir"
	"repro/internal/isa"
	"repro/internal/kernels"
	"repro/internal/obs"
	"repro/internal/occupancy"
	"repro/internal/prof"
	"repro/internal/sa"
	"repro/internal/sim"
	"repro/internal/tv"
)

// Re-exported core types. The paper's contribution lives in these:
// Realizer compiles occupancy-adaptive binaries (Section 3.2-3.3), Tuner
// adapts at runtime (Section 3.4).
type (
	// Realizer compiles a kernel for a device and cache configuration and
	// provides Compile (Figure 8), Tune (end-to-end), Sweep (exhaustive
	// search), Realize (one occupancy level), and Baseline (nvcc-like).
	Realizer = core.Realizer
	// Version is one occupancy-realized binary.
	Version = core.Version
	// Candidate pairs a version with a target occupancy level.
	Candidate = core.Candidate
	// CompileResult is the compile-time tuning output.
	CompileResult = core.CompileResult
	// TuneReport is the end-to-end tuning outcome.
	TuneReport = core.TuneReport
	// Tuner is the runtime selection state machine (Figure 9).
	Tuner = core.Tuner
	// Launch describes a kernel's grid and application iterations.
	Launch = core.Launch
	// LevelResult is one point of an occupancy sweep.
	LevelResult = core.LevelResult
	// Decision is one runtime tuning step's explanation (TuneReport's
	// decision log; `orion tune -explain` renders these).
	Decision = core.Decision
	// Headroom describes an occupancy plateau and the resources running at
	// its low end frees (paper Section 4.2).
	Headroom = core.Headroom

	// Program is a kernel: entry function plus device functions.
	Program = isa.Program
	// Device describes a simulated GPU platform.
	Device = device.Device
	// CacheConfig selects the shared/L1 split of on-chip memory.
	CacheConfig = device.CacheConfig
	// OccupancyResult reports SM residency for a resource configuration.
	OccupancyResult = occupancy.Result
	// SimStats is a simulated launch's outcome.
	SimStats = sim.Stats
	// SimTotals is a snapshot of the process-wide simulation counters
	// (stall breakdown, cache hierarchy); see SnapshotSimTotals.
	SimTotals = sim.Totals
	// ProfileSpec configures the simulator-native profiler (PC-level
	// stall attribution and/or sampled counter tracks).
	ProfileSpec = prof.Spec
	// ProfileReport is a profiled run's ranked hot-spot report.
	ProfileReport = prof.Report
	// Kernel is one evaluation benchmark.
	Kernel = kernels.Kernel
	// Suite regenerates the paper's tables and figures.
	Suite = bench.Suite
	// ResultTable is a rendered experiment result.
	ResultTable = bench.Table

	// Collector gathers observability spans and metrics; attach one to
	// Realizer.Obs or Suite.Obs and export with WriteChromeTrace /
	// WriteMetricsJSON. A nil Collector disables all instrumentation.
	Collector = obs.Collector
	// MetricsRegistry is a collector's named counters/gauges/histograms.
	MetricsRegistry = obs.Registry
	// CacheSnapshot reports the process-wide memo caches' hit/miss
	// counters.
	CacheSnapshot = core.CacheSnapshot
	// LadderCounters reports the occupancy-ladder realization counters
	// (levels reused, colorings re-run, realizations pruned).
	LadderCounters = core.LadderCounters
	// Ladder realizes one program across all occupancy levels through a
	// shared set of middle-end analyses (Realizer.NewLadder).
	Ladder = core.Ladder

	// Diagnostic is one static-analysis finding (divergent barrier,
	// shared-memory race, uninitialized read, ...; see internal/sa).
	Diagnostic = sa.Diagnostic
	// Severity ranks a diagnostic (info, warning, error).
	Severity = sa.Severity
	// LintMode selects how analysis findings gate compilation
	// (Realizer.Lint: LintStrict, LintWarn, LintOff).
	LintMode = core.LintMode
	// AnalysisError is the strict-mode rejection carrying the findings.
	AnalysisError = core.AnalysisError

	// TVMode selects how the middle end's translation validator gates the
	// optimization passes (Realizer.TV: TVStrict, TVWarn, TVOff).
	TVMode = tv.Mode
)

// Cache configurations (paper Table 3).
const (
	SmallCache = device.SmallCache // 16 KB L1 + 48 KB shared
	LargeCache = device.LargeCache // 48 KB L1 + 16 KB shared
)

// Tuning directions (paper Section 3.3).
const (
	Increasing = core.Increasing
	Decreasing = core.Decreasing
)

// Lint modes (Realizer.Lint; the CLIs' -lint flag).
const (
	LintOff    = core.LintOff
	LintWarn   = core.LintWarn
	LintStrict = core.LintStrict
)

// Diagnostic severities.
const (
	SevInfo    = sa.SevInfo
	SevWarning = sa.SevWarning
	SevError   = sa.SevError
)

// Translation-validation modes (Realizer.TV; the CLIs' -tv flag).
const (
	TVOff    = tv.ModeOff
	TVWarn   = tv.ModeWarn
	TVStrict = tv.ModeStrict
)

// ParseTVMode parses a -tv flag value (strict, warn, or off).
func ParseTVMode(s string) (TVMode, error) { return tv.ParseMode(s) }

// TVCounters reports the process-wide translation-validation counters:
// pass applications checked, rejected, and abstained (orion-bench's
// tv_checked/tv_rejected/tv_abstained JSON fields).
func TVCounters() (checked, rejected, abstained uint64) { return tv.Counters() }

// ResetTVCounters zeroes the process-wide translation-validation
// counters (orion-bench calls it at startup so reports cover exactly one
// invocation).
func ResetTVCounters() { tv.ResetCounters() }

// AnalyzeKernel runs the SIMT static analyzer on a program and returns
// its findings in deterministic order: thread-variance classification of
// branches, barrier-divergence checking, shared-memory race detection
// over barrier intervals, and definite-use checks (DESIGN.md §11).
func AnalyzeKernel(p *Program) []Diagnostic { return sa.Analyze(p) }

// ParseLintMode parses a -lint flag value (strict, warn, or off).
func ParseLintMode(s string) (LintMode, error) { return core.ParseLintMode(s) }

// GTX680 returns the simulated Kepler platform.
func GTX680() *Device { return device.GTX680() }

// TeslaC2075 returns the simulated Fermi platform.
func TeslaC2075() *Device { return device.TeslaC2075() }

// Devices returns both evaluation platforms in paper order.
func Devices() []*Device { return device.Both() }

// NewRealizer returns an Orion compiler for the device and cache
// configuration, with the full optimization set enabled.
func NewRealizer(d *Device, cc CacheConfig) *Realizer { return core.NewRealizer(d, cc) }

// ParseKernel assembles OASM text into a program.
func ParseKernel(src string) (*Program, error) { return isa.Parse(src) }

// FormatKernel disassembles a program to OASM text.
func FormatKernel(p *Program) string { return isa.Format(p) }

// EncodeKernel serializes a program to the ORN1 binary format (the form
// the Orion compiler consumes and produces, like SASS in the paper).
func EncodeKernel(p *Program) []byte { return isa.Encode(p) }

// DecodeKernel parses an ORN1 binary.
func DecodeKernel(data []byte) (*Program, error) { return isa.Decode(data) }

// ValidateKernel checks structural invariants of a program.
func ValidateKernel(p *Program) error { return isa.Validate(p) }

// MaxLive computes the compile-time register-demand metric that picks the
// tuning direction (paper Section 3.3).
func MaxLive(p *Program) (int, error) { return core.MaxLive(p) }

// UnrollLoop doubles the entry function's canonical counted loop — the
// optimization Section 4.2 pairs with plateau headroom (it trades
// register pressure for fewer dynamic instructions). It returns a new
// program, or an error when the loop shape does not admit unrolling.
func UnrollLoop(p *Program) (*Program, error) {
	nf, err := ir.UnrollCountedLoop(p.Entry())
	if err != nil {
		return nil, err
	}
	np := p.Clone()
	np.Funcs[0] = nf
	return np, nil
}

// EncodeFat serializes a compile result into the paper's multi-version
// binary (Figure 3): every candidate version plus the tuning metadata the
// runtime needs.
func EncodeFat(cr *CompileResult) []byte { return core.EncodeFat(cr) }

// DecodeFat parses a multi-version binary; the result drives NewTuner
// without recompilation.
func DecodeFat(data []byte) (*CompileResult, error) { return core.DecodeFat(data) }

// NewTuner builds the runtime occupancy tuner (Figure 9) from compile-time
// output, whether freshly compiled or decoded from a multi-version binary.
func NewTuner(cr *CompileResult) *Tuner { return core.NewTuner(cr) }

// OccupancyLevels enumerates the achievable warps-per-SM levels for a
// block size on a device.
func OccupancyLevels(d *Device, blockDim int) []int {
	return occupancy.Levels(d, blockDim)
}

// Occupancy runs the NVIDIA-calculator-style residency computation.
func Occupancy(d *Device, cc CacheConfig, regsPerThread, sharedPerBlock, blockDim int) (OccupancyResult, error) {
	return occupancy.Calc(d, cc, occupancy.Config{
		RegsPerThread:  regsPerThread,
		SharedPerBlock: sharedPerBlock,
		BlockDim:       blockDim,
	})
}

// SimBackend selects the simulator's execution backend: compiled
// closures (the default) or the step interpreter retained as a
// differential oracle.
type SimBackend = sim.Backend

// Simulator backend selectors, re-exported for CLI flag plumbing.
const (
	SimBackendAuto     = sim.BackendAuto
	SimBackendCompiled = sim.BackendCompiled
	SimBackendInterp   = sim.BackendInterp
)

// ParseSimBackend parses a -sim-backend flag value ("compiled", "interp",
// or "" for the default).
func ParseSimBackend(s string) (SimBackend, error) { return sim.ParseBackend(s) }

// SetSimBackend sets the process-default simulator backend, used by every
// launch whose Config does not pick one explicitly.
func SetSimBackend(b SimBackend) { sim.SetDefaultBackend(b) }

// CurrentSimBackend reports the resolved process-default backend name.
func CurrentSimBackend() string { return sim.DefaultBackend().String() }

// Simulate executes a compiled version at a target occupancy on the
// simulated device.
func Simulate(v *Version, d *Device, cc CacheConfig, targetWarps, gridWarps int) (*SimStats, error) {
	return v.RunAt(d, cc, targetWarps, &interp.Launch{Prog: v.Prog, GridWarps: gridWarps})
}

// SimulateObs is Simulate recording a span (and metrics) into the
// collector; a nil collector behaves exactly like Simulate.
func SimulateObs(v *Version, d *Device, cc CacheConfig, targetWarps, gridWarps int, c *Collector) (*SimStats, error) {
	return v.RunAtCtx(d, cc, targetWarps, &interp.Launch{Prog: v.Prog, GridWarps: gridWarps}, c.Ctx())
}

// Profile is Simulate with issue tracing for the first traceWarps warps;
// the result's Trace renders a per-warp timeline.
func Profile(v *Version, d *Device, cc CacheConfig, targetWarps, gridWarps, traceWarps int) (*SimStats, error) {
	return v.ProfileAt(d, cc, targetWarps, &interp.Launch{Prog: v.Prog, GridWarps: gridWarps}, traceWarps)
}

// ProfileDetailed is Profile with the full simulator-native profiler:
// per-PC issue/stall attribution and sampled counter tracks per spec,
// recorded into the result's Profile field (and, via the collector,
// exported as Chrome trace counter tracks). Profiled runs always bypass
// the run cache.
func ProfileDetailed(v *Version, d *Device, cc CacheConfig, targetWarps, gridWarps, traceWarps int, spec *ProfileSpec, c *Collector) (*SimStats, error) {
	return v.ProfileDetailedCtx(d, cc, targetWarps,
		&interp.Launch{Prog: v.Prog, GridWarps: gridWarps}, traceWarps, spec, c.Ctx())
}

// BuildProfileReport ranks a profiled run into the user-facing hot-spot
// report, resolving spill sites against the version's provenance map.
func BuildProfileReport(v *Version, d *Device, st *SimStats, topN int) *ProfileReport {
	return core.BuildProfileReport(v, d, st, topN)
}

// SnapshotSimTotals reads the process-wide simulation counters. Deltas
// between snapshots expose a phase's stall breakdown and cache-hierarchy
// behavior (uncached simulations only; run-cache hits never reach the
// simulator).
func SnapshotSimTotals() SimTotals { return sim.SnapshotTotals() }

// Execute runs a program functionally (no timing) and returns its store
// checksum and dynamic instruction count; useful for verifying that
// transformed binaries preserve semantics.
func Execute(p *Program, gridWarps int) (checksum uint64, steps int, err error) {
	res, err := interp.Run(&interp.Launch{Prog: p, GridWarps: gridWarps}, 0)
	if err != nil {
		return 0, 0, err
	}
	return res.Checksum, res.Steps, nil
}

// Prediction is the Hong & Kim MWP-CWP analytical model's output — the
// prior prediction-based approach the paper contrasts Orion's measured
// feedback against.
type Prediction = analytic.Prediction

// PredictOccupancy profiles the program functionally and predicts its
// cycles at the given occupancy with the MWP-CWP model.
func PredictOccupancy(d *Device, p *Program, activeWarpsPerSM, totalWarps int) (Prediction, error) {
	return analytic.PredictProgram(d, p, activeWarpsPerSM, totalWarps)
}

// EnergyPrediction is the integrated power-and-performance model's output
// (the paper's reference [13]).
type EnergyPrediction = analytic.EnergyPrediction

// PredictEnergy predicts a program's energy at the given occupancy and
// register allocation with the component power model of [13].
func PredictEnergy(d *Device, p *Program, activeWarpsPerSM, totalWarps, regsPerThread int) (EnergyPrediction, error) {
	return analytic.PredictProgramEnergy(d, p, activeWarpsPerSM, totalWarps, regsPerThread)
}

// PlateauHeadroom analyzes a sweep for the paper's Section 4.2
// observation: the occupancy range with best-class performance and the
// per-thread resources freed by running at its low end.
func PlateauHeadroom(d *Device, cc CacheConfig, blockDim int, sweep []LevelResult) Headroom {
	return core.PlateauHeadroom(d, cc, blockDim, sweep)
}

// Benchmarks returns the paper's evaluation kernels (Table 2 plus
// heartwall and matrixMul). The error reports a kernel-generator source
// that fails to assemble.
func Benchmarks() ([]*Kernel, error) { return kernels.All() }

// Benchmark returns one evaluation kernel by name.
func Benchmark(name string) (*Kernel, error) { return kernels.ByName(name) }

// NewSuite returns an experiment suite; scale 1.0 reproduces the recorded
// results, smaller values shrink the grids proportionally.
func NewSuite(scale float64) *Suite { return bench.New(scale) }

// NewCollector returns an enabled observability collector (see
// Realizer.Obs and Suite.Obs; DESIGN.md §8 documents the span model and
// export formats).
func NewCollector() *Collector { return obs.New() }

// SnapshotCacheCounters reads the process-wide realize/run memo-cache
// counters.
func SnapshotCacheCounters() CacheSnapshot { return core.SnapshotCacheCounters() }

// LadderStats reads the process-wide occupancy-ladder counters.
func LadderStats() LadderCounters { return core.LadderStats() }

// ResetCacheCounters zeroes the memo-cache counters without dropping
// entries, so a warm process can report per-invocation numbers.
func ResetCacheCounters() { core.ResetCacheCounters() }

// PublishCacheMetrics copies the memo-cache counters into the collector's
// metrics registry (called just before exporting a metrics snapshot).
func PublishCacheMetrics(c *Collector) { core.PublishCacheMetrics(c.Metrics()) }
