GO ?= go

.PHONY: check build vet test race test-race determinism fuzz-short bench bench-smoke fmt fmt-check

## check: the full CI gate — formatting, vet, build, race-enabled tests,
## the serial-vs-parallel determinism suite, a short fuzz pass over the
## binary decoder and the realization pipeline, and a one-shot run of the
## cold-sweep benchmark so compile-path regressions fail loudly.
check: fmt-check vet build test-race determinism fuzz-short bench-smoke

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

test-race:
	$(GO) test -race ./...

race: test-race

## determinism: byte-identity of suite tables across serial/uncached and
## parallel/cached runs, under the race detector.
determinism:
	$(GO) test -race -run Determinism ./internal/bench/

## fuzz-short: a quick coverage-guided pass over each fuzz target; the
## checked-in corpora run as plain regression tests under `make test`.
fuzz-short:
	$(GO) test -run '^$$' -fuzz FuzzDecode -fuzztime 10s ./internal/isa/
	$(GO) test -run '^$$' -fuzz FuzzRealize -fuzztime 10s ./internal/core/

## bench-smoke: one iteration of the cold-sweep benchmark (the number
## behind BENCH_ladder.json) — not a measurement, just proof the
## benchmark path still compiles and runs.
bench-smoke:
	$(GO) test -run '^$$' -bench SweepCold -benchtime 1x ./internal/bench/

## bench: the end-to-end suite benchmark behind the wall-clock claim
## (cached vs uncached), plus a metrics-snapshot artifact of one suite
## experiment for revision-over-revision diffing.
bench:
	$(GO) test -run '^$$' -bench SuiteEndToEnd -benchtime 1x .
	$(GO) run ./cmd/orion-bench -exp fig1 -scale 0.25 -metrics bench-metrics.json > /dev/null
	@echo "wrote bench-metrics.json"

fmt:
	gofmt -l .

## fmt-check: fail when any file needs gofmt.
fmt-check:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi
