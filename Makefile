GO ?= go

.PHONY: check build vet test race determinism bench fmt

## check: the full CI gate — vet, build, race-enabled tests, and the
## serial-vs-parallel determinism suite.
check: vet build race determinism

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

## determinism: byte-identity of suite tables across serial/uncached and
## parallel/cached runs, under the race detector.
determinism:
	$(GO) test -race -run Determinism ./internal/bench/

## bench: the end-to-end suite benchmark behind the wall-clock claim
## (cached vs uncached).
bench:
	$(GO) test -run '^$$' -bench SuiteEndToEnd -benchtime 1x .

fmt:
	gofmt -l .
