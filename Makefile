GO ?= go

.PHONY: check build vet lint test race test-race determinism fuzz-short bench bench-sim bench-serve bench-opt bench-smoke bench-opt-smoke profile-smoke serve-smoke tv-smoke fmt fmt-check

## check: the full CI gate — formatting, vet, staticcheck, build,
## race-enabled tests, the serial-vs-parallel determinism suite, a short
## fuzz pass over the binary decoder, the realization pipeline, the
## static analyzer, and the translation validator, a one-shot run of the
## cold-sweep benchmark so compile-path regressions fail loudly, the
## strict-TV whole-suite sweep, and the end-to-end daemon smoke
## (serve-vs-CLI byte identity plus graceful shutdown).
check: fmt-check vet lint build test-race determinism fuzz-short bench-smoke bench-opt-smoke tv-smoke profile-smoke serve-smoke

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

## lint: staticcheck over the whole tree, pinned via `go run` so no
## separate install step is needed. Offline environments (no module
## proxy) skip with a notice instead of failing the gate; any real
## staticcheck finding still fails it.
STATICCHECK = honnef.co/go/tools/cmd/staticcheck@2024.1.1
lint:
	@out="$$($(GO) run $(STATICCHECK) ./... 2>&1)"; status=$$?; \
	if [ $$status -ne 0 ] && printf '%s' "$$out" | grep -qE "dial tcp|no such host|connection refused|i/o timeout|missing go.sum entry|proxy\.golang\.org"; then \
		echo "lint: staticcheck unavailable offline; skipped"; \
	elif [ $$status -ne 0 ]; then \
		printf '%s\n' "$$out"; exit $$status; \
	elif [ -n "$$out" ]; then printf '%s\n' "$$out"; fi

test:
	$(GO) test ./...

test-race:
	$(GO) test -race ./...

race: test-race

## determinism: byte-identity of suite tables across serial/uncached and
## parallel/cached runs, of simulator Stats across repeated runs on both
## execution backends, and of daemon responses across restarts and
## concurrent duplicate requests — all under the race detector. The
## serve and memo suites run in full here because every one of their
## tests is a concurrency/determinism contract.
determinism:
	$(GO) test -race -run Determinism ./internal/bench/ ./internal/sim/ ./internal/opt/
	$(GO) test -race ./internal/serve/ ./internal/memo/

## fuzz-short: a quick coverage-guided pass over each fuzz target; the
## checked-in corpora run as plain regression tests under `make test`.
fuzz-short:
	$(GO) test -run '^$$' -fuzz FuzzDecode -fuzztime 10s ./internal/isa/
	$(GO) test -run '^$$' -fuzz FuzzRealize -fuzztime 10s ./internal/core/
	$(GO) test -run '^$$' -fuzz FuzzAnalyze -fuzztime 10s ./internal/sa/
	$(GO) test -run '^$$' -fuzz FuzzSimCompiled -fuzztime 10s ./internal/sim/
	$(GO) test -run '^$$' -fuzz FuzzOpt -fuzztime 10s ./internal/opt/
	$(GO) test -run '^$$' -fuzz FuzzTV -fuzztime 10s ./internal/tv/

## bench-smoke: one iteration of the cold-sweep benchmark (the number
## behind BENCH_ladder.json) — not a measurement, just proof the
## benchmark path still compiles and runs.
bench-smoke:
	$(GO) test -run '^$$' -bench SweepCold -benchtime 1x ./internal/bench/

## bench: the end-to-end suite benchmark behind the wall-clock claim
## (cached vs uncached), plus a metrics-snapshot artifact of one suite
## experiment for revision-over-revision diffing.
bench:
	$(GO) test -run '^$$' -bench SuiteEndToEnd -benchtime 1x .
	$(GO) run ./cmd/orion-bench -exp fig1 -scale 0.25 -metrics bench-metrics.json > /dev/null
	@echo "wrote bench-metrics.json"

## bench-sim: the end-to-end suite benchmark measured once per execution
## backend, recorded as BENCH_sim.json (the artifact behind the compiled
## backend's speedup claim).
bench-sim:
	ORION_BENCH_SIM_OUT=BENCH_sim.json $(GO) test -run WriteSimBench -timeout 2h .
	@echo "wrote BENCH_sim.json"

## bench-opt: the middle-end artifact behind BENCH_opt.json — the cold
## occupancy sweep and the cached end-to-end suite timed with the
## pressure-reducing pass pipeline off and on, plus per-kernel max-live
## and spill outcomes on both devices.
bench-opt:
	ORION_BENCH_OPT_OUT=BENCH_opt.json $(GO) test -run WriteOptBench -timeout 2h .
	@echo "wrote BENCH_opt.json"

## bench-opt-smoke: one iteration of the cold sweep with the middle end
## on — not a measurement, just proof the pass pipeline still compiles,
## runs, and realizes every kernel at every feasible level.
bench-opt-smoke:
	$(GO) test -run '^$$' -bench SweepColdOpt -benchtime 1x ./internal/bench/

## bench-serve: the daemon load benchmark behind BENCH_serve.json — 64
## concurrent clients issuing a mixed tune/compile/sweep/scrape workload
## under the race detector, with byte-identity checks on every duplicated
## response. Writes the latency distribution artifact.
bench-serve:
	ORION_BENCH_SERVE_OUT=$(CURDIR)/BENCH_serve.json $(GO) test -race -count=1 -run ConcurrentMixedLoad -v ./internal/serve/ | grep -E 'wrote|PASS|FAIL|ok '
	@echo "wrote BENCH_serve.json"

## serve-smoke: start the real `orion serve` daemon in-process, tune a
## kernel over HTTP, and require the response to be byte-identical to
## `orion tune -json` for the same kernel and flags, then SIGINT-drain.
serve-smoke:
	$(GO) test -race -count=1 -run ServeSmoke ./cmd/orion/

## tv-smoke: every benchmark kernel at every feasible occupancy level on
## both devices with the middle end on and translation validation
## strict; fails on any rejection (a pass miscompiled) or abstention
## (the validator lost precision on the real corpus).
tv-smoke:
	$(GO) test -count=1 -run TestTVSmoke .

## profile-smoke: profile one kernel on both execution backends and
## diff the PC-profile artifacts — the profiler's cross-backend
## bit-identity contract, checked end to end through the CLI. Only the
## "backend" field may differ.
profile-smoke:
	@tmp=$$(mktemp -d); trap 'rm -rf "$$tmp"' EXIT; \
	$(GO) run ./cmd/orion profile -kernel bfs -warps 16 -sim-backend compiled -json "$$tmp/compiled.json" > /dev/null; \
	$(GO) run ./cmd/orion profile -kernel bfs -warps 16 -sim-backend interp   -json "$$tmp/interp.json"   > /dev/null; \
	grep -v '"backend"' "$$tmp/compiled.json" > "$$tmp/compiled.stripped"; \
	grep -v '"backend"' "$$tmp/interp.json" > "$$tmp/interp.stripped"; \
	if ! diff "$$tmp/compiled.stripped" "$$tmp/interp.stripped"; then \
		echo "profile-smoke: PC profiles differ between backends"; exit 1; fi; \
	echo "profile-smoke: PC profiles bit-identical across backends"

fmt:
	gofmt -l .

## fmt-check: fail when any file needs gofmt.
fmt-check:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi
