GO ?= go

.PHONY: check build vet test race determinism bench fmt fmt-check

## check: the full CI gate — formatting, vet, build, race-enabled tests,
## and the serial-vs-parallel determinism suite.
check: fmt-check vet build race determinism

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

## determinism: byte-identity of suite tables across serial/uncached and
## parallel/cached runs, under the race detector.
determinism:
	$(GO) test -race -run Determinism ./internal/bench/

## bench: the end-to-end suite benchmark behind the wall-clock claim
## (cached vs uncached), plus a metrics-snapshot artifact of one suite
## experiment for revision-over-revision diffing.
bench:
	$(GO) test -run '^$$' -bench SuiteEndToEnd -benchtime 1x .
	$(GO) run ./cmd/orion-bench -exp fig1 -scale 0.25 -metrics bench-metrics.json > /dev/null
	@echo "wrote bench-metrics.json"

fmt:
	gofmt -l .

## fmt-check: fail when any file needs gofmt.
fmt-check:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi
